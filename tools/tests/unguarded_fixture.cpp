// Thread-safety fixture: MUST FAIL to compile under
//   clang++ -Wthread-safety -Werror=thread-safety
// It reaches a JIFFY_REQUIRES_GUARD entry point with a Guard that was
// constructed but never established via assert_held(), exactly the mistake
// the capability annotations exist to reject. check_thread_safety.py
// asserts the rejection (and that guarded_fixture.cpp, its corrected twin,
// compiles). Never built by CMake.
#include "common/analysis.h"
#include "ebr/ebr.h"

namespace {

struct Probe {
  int hits = 0;
  void touch_node([[maybe_unused]] const jiffy::ebr::Guard& g)
      JIFFY_REQUIRES_GUARD(g) {
    ++hits;
  }
};

}  // namespace

int main() {
  jiffy::ebr::Guard g;
  Probe p;
  p.touch_node(g);  // error: calling requires holding 'g'
  return p.hits;
}
