#!/usr/bin/env python3
"""Self-test for the tools/jiffylint protocol passes (via tools/lint.py).

For each pass, runs the driver over a seeded-violation fixture with the
violations catalog and asserts the EXACT (file, kind) finding set, then
over the clean twin with the clean catalog and asserts zero findings and
exit 0. Wired into ctest as a quick-label target (see tests/CMakeLists.txt).

Exit codes: 0 pass, 1 fail.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "lint.py")
FIXTURES = os.path.join(HERE, "jiffylint_fixtures")
MODEL_BAD = os.path.join(FIXTURES, "model_bad.json")
MODEL_CLEAN = os.path.join(FIXTURES, "model_clean.json")

FINDING_RE = re.compile(r"^(.*?):(\d+): \[([a-z-]+)\]")

# pass -> (bad fixture, expected (basename, kind) list, clean twin)
CASES = {
    "guard": (
        "guard_bad.h",
        [
            ("guard_bad.h", "guard-escape"),
            ("guard_bad.h", "guard-escape"),
            ("guard_bad.h", "guard-escape"),
        ],
        "guard_clean.h",
    ),
    "retire": (
        "retire_bad.h",
        [
            ("retire_bad.h", "unjustified-retire"),
            ("retire_bad.h", "unknown-unlink-tag"),
            ("retire_bad.h", "unlink-bad-ref"),
            ("retire_bad.h", "unlink-missing-edge"),
            ("model_bad.json", "stale-unlink"),
        ],
        "retire_clean.h",
    ),
    "cas": (
        "cas_bad.h",
        [
            ("cas_bad.h", "weak-outside-loop"),
            ("cas_bad.h", "strong-tight-loop"),
            ("cas_bad.h", "stale-expected"),
            ("cas_bad.h", "invalid-failure-order"),
            ("cas_bad.h", "failure-stronger-than-success"),
            ("cas_bad.h", "cas-tag-order"),
            ("cas_bad.h", "cas-tag-order"),
        ],
        "cas_clean.h",
    ),
    "pubgraph": (
        "pubgraph_bad.h",
        [
            ("model_bad.json", "schema-missing"),
            ("model_bad.json", "schema-missing"),
            ("model_bad.json", "unknown-after"),
            ("model_bad.json", "pub-cycle"),
            ("model_bad.json", "unpublished-field"),
            ("model_bad.json", "disconnected-object"),
            ("pubgraph_bad.h", "direction-mismatch"),
        ],
        "pubgraph_clean.h",
    ),
}


def run_lint(passes, catalog, fixture):
    return subprocess.run(
        [sys.executable, LINT, "--no-audit", "--passes", passes,
         "--catalog", catalog, os.path.join(FIXTURES, fixture)],
        capture_output=True, text=True)


def parse(stdout):
    out = []
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            out.append((os.path.basename(m.group(1)), m.group(3)))
    return sorted(out)


def main():
    ok = True
    for name, (bad, expected, clean) in CASES.items():
        expected = sorted(expected)

        proc = run_lint(name, MODEL_BAD, bad)
        got = parse(proc.stdout)
        if proc.returncode != 1:
            print(f"FAIL [{name}]: {bad} run exited {proc.returncode}, "
                  f"want 1")
            print(proc.stdout, proc.stderr)
            ok = False
        if got != expected:
            print(f"FAIL [{name}]: finding mismatch on {bad}")
            for f in sorted(set(expected) - set(got)):
                print(f"  missing:    {f}")
            for f in sorted(set(got) - set(expected)):
                print(f"  unexpected: {f}")
            print("--- lint output ---")
            print(proc.stdout)
            ok = False

        cproc = run_lint(name, MODEL_CLEAN, clean)
        if cproc.returncode != 0 or parse(cproc.stdout):
            print(f"FAIL [{name}]: clean twin {clean} exited "
                  f"{cproc.returncode} with findings:\n{cproc.stdout}"
                  f"{cproc.stderr}")
            ok = False

    if ok:
        total = sum(len(e) for _b, e, _c in CASES.values())
        print(f"PASS: {total} expected findings across {len(CASES)} passes, "
              f"clean twins clean")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
