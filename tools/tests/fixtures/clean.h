// Audit fixture: a fully conforming file — run_audit_fixtures.py asserts the
// audit reports ZERO findings for it. Scanned by tools/atomic_audit.py
// against tools/tests/fixtures_model.json; never compiled.
#pragma once

#include <atomic>

namespace fixture {

struct Clean {
  std::atomic<int> data{0};
  std::atomic<bool> ready{false};

  void publish(int v) {
    // relaxed: the payload is still private; the ready store publishes it.
    data.store(v, std::memory_order_relaxed);
    ready.store(true, std::memory_order_release);  // pairs: fx-pair
  }

  int consume() {
    while (!ready.load(std::memory_order_acquire)) {  // pairs: fx-pair
    }
    // relaxed: ordered by the fx-pair acquire above.
    return data.load(std::memory_order_relaxed);
  }
};

}  // namespace fixture
