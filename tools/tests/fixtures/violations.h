// Audit fixture: every numbered site below is a known violation, and
// run_audit_fixtures.py asserts the audit reports exactly these findings.
// Scanned by tools/atomic_audit.py; never compiled. The comments here
// deliberately avoid the literal justification keywords so they cannot
// accidentally satisfy the audit.
#pragma once

#include <atomic>

namespace fixture {

struct Violations {
  std::atomic<int> x{0};
  std::atomic<int> counter{0};

  // Site 1 (implicit-order): CAS relying on the seq_cst default.
  bool default_order_cas(int& e) { return x.compare_exchange_strong(e, 1); }

  // Site 2 (unjustified use of the weakest order, no note attached).
  int weak_load() { return x.load(std::memory_order_relaxed); }

  // Site 3 (release store that names no publication edge).
  void untagged_release() { x.store(1, std::memory_order_release); }

  // Site 4 (tag not present in the fixture catalog).
  void bogus_tag() {
    x.store(2, std::memory_order_release);  // pairs: fx-no-such-tag
  }

  // Site 5 (fx-orphan has no acquire observer anywhere in the fixtures).
  void orphan() {
    x.store(3, std::memory_order_release);  // pairs: fx-orphan
  }

  // Site 6 (fx-acquire-only has no release publisher in the fixtures).
  int acquire_only() {
    return x.load(std::memory_order_acquire);  // pairs: fx-acquire-only
  }

  // Site 7 (operator-form access, seq_cst by default).
  void bump() { counter++; }
};

}  // namespace fixture
