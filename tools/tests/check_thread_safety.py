#!/usr/bin/env python3
"""Compile-checks the Clang thread-safety-analysis fixtures.

guarded_fixture.cpp must compile cleanly and unguarded_fixture.cpp must be
REJECTED under `-Wthread-safety -Werror=thread-safety` — proving both that
the capability annotations in src/common/analysis.h catch un-guarded node
access and that they don't false-positive on the sanctioned assert_held()
pattern.

Needs a clang++ ($JIFFY_CLANGXX, $CXX if it is clang, or clang++ on PATH);
without one the check is skipped with exit code 77, which ctest maps to
SKIPPED via SKIP_RETURN_CODE (the GCC-only tier-1 container takes this
path; the CI lint job provides clang and runs it for real).

Exit codes: 0 pass, 1 fail, 77 skipped (no clang).
"""

import os
import shutil
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))

FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-I", os.path.join(REPO, "src"),
    "-Wthread-safety",
    "-Werror=thread-safety",
]


def find_clangxx():
    # Probe versioned binaries too (clang++-19 ... clang++-15): distros often
    # ship those without a bare `clang++` symlink, and skipping (exit 77) when
    # one is installed would silently drop the TSA gate.
    versioned = [f"clang++-{v}" for v in range(19, 14, -1)]
    versioned += [f"clang-{v}" for v in range(19, 14, -1)]
    for cand in [os.environ.get("JIFFY_CLANGXX"), os.environ.get("CXX"),
                 "clang++", *versioned]:
        if not cand:
            continue
        path = shutil.which(cand)
        if path and "clang" in os.path.basename(path):
            return path
    return None


def compile_fixture(clangxx, name):
    return subprocess.run(
        [clangxx] + FLAGS + [os.path.join(HERE, name)],
        capture_output=True, text=True)


def main():
    clangxx = find_clangxx()
    if clangxx is None:
        print("SKIP: no clang++ found (set $JIFFY_CLANGXX); thread-safety "
              "analysis needs Clang")
        return 77

    ok = True

    good = compile_fixture(clangxx, "guarded_fixture.cpp")
    if good.returncode != 0:
        print(f"FAIL: guarded_fixture.cpp should compile but did not:\n"
              f"{good.stderr}")
        ok = False

    bad = compile_fixture(clangxx, "unguarded_fixture.cpp")
    if bad.returncode == 0:
        print("FAIL: unguarded_fixture.cpp compiled; -Wthread-safety did "
              "not reject the un-guarded call")
        ok = False
    elif "thread-safety" not in bad.stderr and "requires holding" not in bad.stderr:
        print(f"FAIL: unguarded_fixture.cpp failed for the wrong reason:\n"
              f"{bad.stderr}")
        ok = False

    if ok:
        print(f"PASS: thread-safety analysis accepts the guarded fixture "
              f"and rejects the unguarded one ({clangxx})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
