// Thread-safety fixture: the corrected twin of unguarded_fixture.cpp.
// MUST compile cleanly under clang++ -Wthread-safety -Werror=thread-safety:
// the RAII Guard is established with assert_held() before the guarded entry
// point is reached (the repo-wide convention, see src/common/analysis.h).
// check_thread_safety.py asserts this. Never built by CMake.
#include "common/analysis.h"
#include "ebr/ebr.h"

namespace {

struct Probe {
  int hits = 0;
  void touch_node([[maybe_unused]] const jiffy::ebr::Guard& g)
      JIFFY_REQUIRES_GUARD(g) {
    ++hits;
  }
};

}  // namespace

int main() {
  jiffy::ebr::Guard g;
  g.assert_held();
  Probe p;
  p.touch_node(g);
  return p.hits;
}
