// Seeded guard-escape violations for tools/jiffylint pass 1 (never built;
// text-scanned only). Expected: 3x guard-escape.
#pragma once

#include <cstdint>
#include <vector>

namespace fx {

struct Node {
  Node* next(std::uint64_t k);
};

struct GuardBad {
  Node* last_ = nullptr;
  std::vector<Node*> hot_;
  Node* head_ = nullptr;

  Node* lookup(std::uint64_t k) {
    ebr::Guard g;
    Node* n = head_->next(k);
    last_ = n;          // guard-escape: member store outlives g
    hot_.push_back(n);  // guard-escape: member container outlives g
    return n;           // guard-escape: returned past the local guard
  }
};

}  // namespace fx
