// Clean twin of retire_bad.h: every retire names a catalog unlink tag whose
// via edge has a release site in this file; both the comment and the macro
// form of the grammar are exercised. Expected: 0.
#pragma once

#include <atomic>

namespace fx {

struct Node {
  Node* next;
};

void free_node(void* p);

struct RetireClean {
  std::atomic<Node*> head_{nullptr};

  bool install(Node* n) {
    Node* e = head_.load(std::memory_order_relaxed);
    return head_.compare_exchange_strong(
        e, n, std::memory_order_release,
        std::memory_order_relaxed);  // pairs: fx-good
  }

  void drop(Node* dead) {
    ebr::retire(dead);  // unlink: fx-unlink-ok
  }

  void drop_fn(Node* dead) {
    ebr::retire_fn(dead, &free_node);  JIFFY_LINT_UNLINK(fx-unlink-ok);
  }
};

}  // namespace fx
