// Seeded publication-graph site violation for tools/jiffylint pass 4 (the
// catalog-side violations live in model_bad.json). Expected here:
// direction-mismatch — fx-storeload declares 'store -> load', but this CAS
// plays both sides.
#pragma once

#include <atomic>

namespace fx {

struct Node {
  Node* next;
};

struct PubBad {
  std::atomic<Node*> cur_{nullptr};

  bool swing(Node* n) {
    Node* e = cur_.load(std::memory_order_acquire);  // pairs: fx-storeload
    return cur_.compare_exchange_strong(
        e, n, std::memory_order_acq_rel,
        std::memory_order_acquire);  // pairs: fx-storeload
  }
};

}  // namespace fx
