// Seeded retire-after-unlink violations for tools/jiffylint pass 2.
// Expected: unjustified-retire, unknown-unlink-tag, unlink-bad-ref,
// unlink-missing-edge, plus stale-unlink against model_bad.json
// (fx-unlink-stale is never used here).
#pragma once

#include <atomic>

namespace fx {

struct Node {
  Node* next;
};

void free_node(void* p);

struct RetireBad {
  std::atomic<Node*> head_{nullptr};

  bool install(Node* n) {
    Node* e = head_.load(std::memory_order_relaxed);
    return head_.compare_exchange_strong(
        e, n, std::memory_order_release,
        std::memory_order_relaxed);  // pairs: fx-good
  }

  void sites(Node* a, Node* b, Node* c, Node* d, Node* ok) {
    ebr::retire(a);  // no justification at all
    ebr::retire(b);  // unlink: fx-ghost
    ebr::retire(c);  // unlink: fx-unlink-badref
    ebr::retire(d);  // unlink: fx-unlink-noedge
    ebr::retire_fn(ok, &free_node);  // unlink: fx-unlink-ok
  }
};

}  // namespace fx
