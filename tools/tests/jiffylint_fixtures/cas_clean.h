// Clean twin of cas_bad.h: the canonical shapes the hygiene pass must NOT
// flag — push loop with writeback reload, continue-with-reload, one-shot
// strong, and correctly-ordered tagged CASes. Expected: 0.
#pragma once

#include <atomic>

namespace fx {

struct Node {
  Node* next_plain;
};

struct CasClean {
  std::atomic<int> v_{0};
  std::atomic<bool> flag_{false};
  std::atomic<Node*> head_{nullptr};
  std::atomic<Node*> slot_{nullptr};

  // Canonical push: the failed CAS writes the fresh head back into h.
  void push(Node* n) {
    Node* h = head_.load(std::memory_order_relaxed);
    do {
      n->next_plain = h;
    } while (!head_.compare_exchange_weak(
        h, n, std::memory_order_release,
        std::memory_order_relaxed));  // pairs: fx-good
  }

  // A continue path is fine when expected is reloaded at the top.
  void retry(int want) {
    for (;;) {
      int e = v_.load(std::memory_order_relaxed);
      if (e == want) continue;
      if (v_.compare_exchange_weak(e, want, std::memory_order_relaxed))
        return;
    }
  }

  // One-shot strong CAS: spurious failure is impossible, no loop needed.
  bool claim() {
    bool e = false;
    return flag_.compare_exchange_strong(e, true, std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  // Acquire-side CAS of fx-acqonly with an acquire-capable success order.
  bool adopt(Node* n) {
    Node* e = nullptr;
    return slot_.compare_exchange_strong(
        e, n, std::memory_order_acquire,
        std::memory_order_relaxed);  // pairs: fx-acqonly
  }
};

}  // namespace fx
