// Clean twin of pubgraph_bad.h against model_clean.json: a connected,
// acyclic two-edge object whose acquire sides only read published fields,
// with every site playing a declared role. Expected: 0.
#pragma once

#include <atomic>

namespace fx {

struct Obj {
  int a;
  int b;
};

struct PubClean {
  std::atomic<Obj*> head_{nullptr};
  std::atomic<int> seq_{0};

  void publish(Obj* o) {
    head_.store(o, std::memory_order_release);  // pairs: fx-good
    seq_.store(1, std::memory_order_release);   // pairs: fx-follow
  }

  int read() {
    Obj* o = head_.load(std::memory_order_acquire);  // pairs: fx-good
    if (o && seq_.load(std::memory_order_acquire))   // pairs: fx-follow
      return o->a + o->b;
    return 0;
  }
};

}  // namespace fx
