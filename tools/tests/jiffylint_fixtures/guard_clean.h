// Clean twin of guard_bad.h: every escape shape either justified by the
// suppression grammar or rewritten so nothing leaves the guard. Expected: 0.
#pragma once

#include <cstdint>
#include <vector>

namespace fx {

struct Node {
  Node* next(std::uint64_t k);
};

struct GuardClean {
  Node* last_ = nullptr;
  std::vector<Node*> hot_;
  Node* head_ = nullptr;

  // A JIFFY_REQUIRES_GUARD function may return a protected pointer: the
  // caller holds the guard.
  Node* locate(std::uint64_t k, const ebr::Guard& g) JIFFY_REQUIRES_GUARD(g) {
    Node* n = head_->next(k);
    return n;
  }

  bool lookup(std::uint64_t k) {
    ebr::Guard g;
    Node* n = locate(k, g);
    // escapes: the cursor re-pins its own guard before any use of last_.
    last_ = n;
    hot_.push_back(n);  JIFFY_LINT_ESCAPES("drained before g is released");
    if (!n) return false;
    return probe(n, g);   // pointer passed to an in-guard call: only the
                          // bool result escapes
  }

  bool probe(Node* n, const ebr::Guard& g) JIFFY_REQUIRES_GUARD(g);
};

}  // namespace fx
