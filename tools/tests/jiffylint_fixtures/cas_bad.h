// Seeded CAS-hygiene violations for tools/jiffylint pass 3.
// Expected: weak-outside-loop, strong-tight-loop, stale-expected,
// invalid-failure-order, failure-stronger-than-success, 2x cas-tag-order.
#pragma once

#include <atomic>

namespace fx {

struct Node {
  Node* next;
};

struct CasBad {
  std::atomic<int> v_{0};
  std::atomic<Node*> head_{nullptr};
  std::atomic<Node*> slot_{nullptr};

  bool once(int want) {
    int e = 0;
    // weak may fail spuriously: outside a loop the update is just lost.
    return v_.compare_exchange_weak(e, want, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
  }

  void spin(int want) {
    int e = 0;
    while (!v_.compare_exchange_strong(e, want, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {}
  }

  void stale(int want) {
    int e = v_.load(std::memory_order_relaxed);
    for (;;) {
      if ((want & 1) == 0) continue;  // re-reaches the CAS with the old e
      if (v_.compare_exchange_weak(e, want, std::memory_order_relaxed))
        return;
    }
  }

  void badfail(int want) {
    int e = 0;
    while (!v_.compare_exchange_weak(e, want, std::memory_order_acq_rel,
                                     std::memory_order_release)) {
      e = 0;
    }
  }

  void sloppy(int want) {
    int e = 0;
    while (!v_.compare_exchange_weak(e, want, std::memory_order_relaxed,
                                     std::memory_order_acquire)) {
      e = 0;
    }
  }

  bool install(Node* n) {
    Node* e = nullptr;
    // catalog says CAS is a release side of fx-good; acquire can't publish.
    return head_.compare_exchange_strong(
        e, n, std::memory_order_acquire,
        std::memory_order_relaxed);  // pairs: fx-good
  }

  bool adopt(Node* n) {
    Node* e = nullptr;
    // catalog says CAS is an acquire side of fx-acqonly; relaxed can't see.
    return slot_.compare_exchange_strong(
        e, n, std::memory_order_relaxed,
        std::memory_order_relaxed);  // pairs: fx-acqonly
  }
};

}  // namespace fx
