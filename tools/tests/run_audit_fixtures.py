#!/usr/bin/env python3
"""Self-test for tools/atomic_audit.py.

Runs the audit over tools/tests/fixtures/ with the fixture catalog and
asserts the EXACT findings: each seeded violation in violations.h is
reported with the right kind, the deliberately stale catalog entry fires,
and a second run over clean.h alone reports nothing. Wired into ctest as a
quick-label target (see tests/CMakeLists.txt).

Exit codes: 0 pass, 1 fail.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
AUDIT = os.path.join(REPO, "tools", "atomic_audit.py")
FIXTURES = os.path.join(HERE, "fixtures")
CATALOG = os.path.join(HERE, "fixtures_model.json")

EXPECTED = sorted([
    ("violations.h", "implicit-order"),
    ("violations.h", "unjustified-relaxed"),
    ("violations.h", "missing-pairs"),
    ("violations.h", "unknown-tag"),
    ("violations.h", "orphan-release"),
    ("violations.h", "unpaired-acquire"),
    ("violations.h", "operator-form"),
    ("fixtures_model.json", "stale-catalog"),
])

FINDING_RE = re.compile(r"^(.*?):(\d+): \[([a-z-]+)\]")


def run_audit(*extra):
    return subprocess.run(
        [sys.executable, AUDIT, "--catalog", CATALOG, *extra],
        capture_output=True, text=True)


def parse(stdout):
    out = []
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            out.append((os.path.basename(m.group(1)), m.group(3)))
    return sorted(out)


def main():
    ok = True

    proc = run_audit(FIXTURES)
    got = parse(proc.stdout)
    if proc.returncode != 1:
        print(f"FAIL: fixtures run exited {proc.returncode}, want 1")
        print(proc.stdout, proc.stderr)
        ok = False
    if got != EXPECTED:
        print("FAIL: finding mismatch")
        for f in sorted(set(EXPECTED) - set(got)):
            print(f"  missing:    {f}")
        for f in sorted(set(got) - set(EXPECTED)):
            print(f"  unexpected: {f}")
        print("--- audit output ---")
        print(proc.stdout)
        ok = False

    clean = run_audit(os.path.join(FIXTURES, "clean.h"), "--no-coverage")
    if clean.returncode != 0 or parse(clean.stdout):
        print(f"FAIL: clean fixture run exited {clean.returncode} with "
              f"findings:\n{clean.stdout}")
        ok = False

    if ok:
        print(f"PASS: {len(EXPECTED)} expected findings, clean fixture clean")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
