#!/usr/bin/env python3
"""Scaling gate over BENCH_RESULTS fig CSVs (ISSUE 9, DESIGN.md §14).

Parses one or more figure CSVs (schema:
figure,scenario,batch,dist,kv,index,threads,total_mops,update_mops), groups
the index=jiffy rows by (figure, scenario, batch, dist, kv), and fails if any
unbatched (batch == "simple") group's total_mops at T threads drops below
RATIO x its value at the PREVIOUS thread count in the grid (2 vs 1, 4 vs 2,
8 vs 4, ...). This is the ISSUE-9 acceptance shape — "non-decreasing from
1→2→4 threads, 8-thread no worse than 0.9x of 4-thread" — with the same
tolerance at every step. The engine cannot promise speedup on an arbitrary
box (CI containers are often single-core, where extra threads are pure
oversubscription), but it must not fall off a cliff anywhere along the
thread grid — that regression is what this gate pins.

Gated scope: the a_update and b_lookup75 scenarios with batch == "simple" —
the two whose thread-role composition keeps total_mops comparable across the
grid (update-only is all-updaters at every T; lookup75 mixes two point-op
roles with like units). Everything else is checked with the same ratio but
reported as WARNINGS:

* scan/range scenarios (c/d/e): their total_mops adds scan-entries to
  point-ops, and the harness role schedule gives scanners 50% of a 1-core
  box at 2 threads but 25% at 4+ (1 scanner of 2 vs 1 of 4) — the apparent
  2->4 "cliff" is that share arithmetic, not the engine;
* batched groups (b10/b100 seq/rand): their multi-thread deficit is
  pre-existing at the ISSUE-9 seed (fig10 b100_rand already ran 0.65x at
  2 threads before any of this work) and a different mechanism from the
  per-op cacheline and allocator contention the hard gate protects
  (ROADMAP item). The ISSUE-10 counters MEASURED the long-suspected
  helping-replay-duplication explanation and refuted it: across the
  b10/b100 x seq/rand x 1/2/4-thread sweep, replay_group_duplicated is
  <= 0.03% of installed groups (typically 0-5 of tens of thousands), so
  rebuilt group work is noise — the deficit is descriptor coordination
  plus oversubscription, not duplicated rebuilds.

--metrics=<file> (repeatable) points at the harness's --metrics JSON dump
(schema jiffy-metrics-v1, src/obs/counters.h). When the dump covers a
batched group that warns, the warning stops guessing and reports the
MEASURED replay-duplication ratio — replay_group_duplicated /
(replay_group_claimed + replay_group_duplicated) for the matching cells —
so "helping replay rebuilt 38% of groups" replaces "probably helping".

--strict-batches widens the gate to every group (scans included) for local
what-if runs.

Usage:
    tools/check_scaling.py [--ratio=0.9] [--index=jiffy] [--strict-batches]
                           [--metrics=metrics.json ...] CSV [CSV ...]

Exit status: 0 when every gated group passes (or has no multi-thread rows),
1 on any violation, 2 on usage/parse errors. Non-fig CSVs (ablations with a
different header) are skipped with a note so the tool can be pointed at a
whole sweep directory glob.
"""

import csv
import json
import sys

REQUIRED = ["figure", "scenario", "batch", "dist", "kv", "index", "threads",
            "total_mops"]


def load_metrics(paths):
    """Aggregates replay counters from jiffy-metrics-v1 dumps.

    Returns {(figure, scenario, batch, dist, kv, index, threads):
             [claimed, duplicated]}, summed across dumps (a re-run sweep
    appends a second metrics file rather than merging cells)."""
    cells = {}
    for path in paths:
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("schema") != "jiffy-metrics-v1":
            print(f"error: {path}: schema {doc.get('schema')!r} "
                  f"(want jiffy-metrics-v1)")
            sys.exit(2)
        for cell in doc.get("cells", []):
            key = (cell.get("figure"), cell.get("scenario"),
                   cell.get("batch"), cell.get("dist"), cell.get("kv"),
                   cell.get("index"), int(cell.get("threads", 0)))
            counters = cell.get("counters", {})
            agg = cells.setdefault(key, [0, 0])
            agg[0] += counters.get("replay_group_claimed", 0)
            agg[1] += counters.get("replay_group_duplicated", 0)
    return cells


def replay_note(metrics, key, index_name, threads):
    """Measured duplication ratio suffix for a batched-group warning."""
    agg = metrics.get(key + (index_name, threads))
    if not agg or agg[0] + agg[1] == 0:
        return ""
    claimed, duplicated = agg
    total = claimed + duplicated
    return (f" [measured: helping replay rebuilt {duplicated}/{total} "
            f"groups = {100.0 * duplicated / total:.1f}% duplicated]")


def check_file(path, ratio, index_name, strict_batches, metrics, violations,
               warnings):
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        header = reader.fieldnames or []
        if any(col not in header for col in REQUIRED):
            print(f"note: {path}: not a figure CSV (header {header}); skipped")
            return 0
        groups = {}
        for row in reader:
            if row["index"] != index_name:
                continue
            key = (row["figure"], row["scenario"], row["batch"], row["dist"],
                   row["kv"])
            try:
                threads = int(row["threads"])
                mops = float(row["total_mops"])
            except (TypeError, ValueError):
                print(f"error: {path}: bad row {row}")
                sys.exit(2)
            # Last row wins if a cell was re-run and appended.
            groups.setdefault(key, {})[threads] = mops
    checked = 0
    for key, by_threads in sorted(groups.items()):
        gated = strict_batches or (
            key[2] == "simple" and key[1] in ("a_update", "b_lookup75"))
        grid = sorted(by_threads)
        for prev, threads in zip(grid, grid[1:]):
            if gated:
                checked += 1
            base = by_threads[prev]
            floor = ratio * base
            if by_threads[threads] < floor:
                msg = (f"{path}: {'/'.join(key)}: {threads} threads = "
                       f"{by_threads[threads]:.3f} Mops < {ratio:.2f} x "
                       f"{prev}-thread ({base:.3f}) = {floor:.3f}")
                if not gated and key[2] != "simple":
                    msg += replay_note(metrics, key, index_name, threads)
                (violations if gated else warnings).append(msg)
    return checked


def main(argv):
    ratio = 0.9
    index_name = "jiffy"
    strict_batches = False
    paths = []
    metrics_paths = []
    for arg in argv[1:]:
        if arg.startswith("--ratio="):
            ratio = float(arg[len("--ratio="):])
        elif arg.startswith("--index="):
            index_name = arg[len("--index="):]
        elif arg == "--strict-batches":
            strict_batches = True
        elif arg.startswith("--metrics="):
            metrics_paths.append(arg[len("--metrics="):])
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        elif arg.startswith("-"):
            print(f"error: unknown flag {arg}")
            return 2
        else:
            paths.append(arg)
    if not paths:
        print("error: no CSV files given (try BENCH_RESULTS/fig*.csv)")
        return 2

    metrics = load_metrics(metrics_paths)
    violations = []
    warnings = []
    checked = 0
    for path in paths:
        checked += check_file(path, ratio, index_name, strict_batches,
                              metrics, violations, warnings)

    for w in warnings:
        print(f"  WARN (not gated) {w}")
    if violations:
        print(f"check_scaling: {len(violations)} violation(s) "
              f"(ratio {ratio:.2f}, index {index_name}):")
        for v in violations:
            print(f"  FAIL {v}")
        return 1
    print(f"check_scaling: OK — {checked} gated multi-thread cell(s) within "
          f"{ratio:.2f} x of their predecessor cell (index {index_name}"
          f"{', strict batches' if strict_batches else ''}; "
          f"{len(warnings)} ungated warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
