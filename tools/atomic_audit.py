#!/usr/bin/env python3
"""Atomics memory-order audit (DESIGN.md §10).

Enforces the repo's memory-model conventions over every atomic operation in
the scanned sources:

  * no implicit-order access: every load/store/exchange/CAS/fetch_* and every
    fence names its std::memory_order explicitly (the seq_cst default is
    banned — if seq_cst is required, say so);
  * no operator-form access on std::atomic variables (++ / -- / = / +=),
    which are seq_cst-by-default and invisible to this audit's order check;
  * every site whose strongest effect is memory_order_relaxed carries a
    `// relaxed: <why>` justification;
  * every site with release semantics (release / acq_rel / seq_cst store or
    RMW) and every site with acquire semantics (acquire / consume / acq_rel /
    seq_cst load or RMW) carries a `// pairs: <tag>` comment naming the
    publication edge it participates in;
  * every `pairs:` tag is declared in the machine-readable catalog
    (tools/memory_model.json, mirrored in DESIGN.md §10); a catalog tag with
    release sites but no acquire observer is an orphan release, one with
    acquire sites but no releaser is an unpaired acquire, and a catalog entry
    with no sites at all is stale.

Comment attachment rule (keep in sync with DESIGN.md §10): a `pairs:` or
`relaxed:` comment binds to an operation if it appears as a trailing comment
on any line of the operation's call span (from the line naming the operation
through the line of its closing parenthesis), or in the block of consecutive
comment-only lines immediately above the statement containing the operation.

Modes:
  default     self-contained text scan; needs only Python 3.
  --compdb B  additionally cross-checks the text scan against a clang AST
              dump (`clang++ -Xclang -ast-dump=json`) of one translation unit
              from B/compile_commands.json: any atomic member operation the
              AST sees that the text scan missed is a finding. Requires a
              clang++ (honours $JIFFY_CLANGXX); exits 2 if none is found.

Exit codes: 0 clean, 1 findings, 2 usage/environment error.

Usage:
  tools/atomic_audit.py                      # audit src/ + bench/harness.h
  tools/atomic_audit.py src bench/harness.h  # explicit roots
  tools/atomic_audit.py --compdb build       # + AST cross-check
  tools/atomic_audit.py --catalog F --no-coverage fixtures/  # fixture runs
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_ROOTS = ["src", os.path.join("bench", "harness.h")]
DEFAULT_CATALOG = os.path.join(REPO_ROOT, "tools", "memory_model.json")
SOURCE_EXTS = (".h", ".hpp", ".cpp", ".cc")

# Member operations of std::atomic<T> the audit recognises. wait/notify and
# atomic_flag's test* family are not used in this repo; extend if they appear.
READ_OPS = {"load"}
WRITE_OPS = {"store"}
RMW_OPS = {
    "exchange",
    "compare_exchange_strong",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
}
ALL_OPS = READ_OPS | WRITE_OPS | RMW_OPS

OP_RE = re.compile(r"(?:\.|->)(" + "|".join(sorted(ALL_OPS)) + r")\s*\(")
FENCE_RE = re.compile(r"\batomic_(?:thread|signal)_fence\s*\(")
ORDER_RE = re.compile(r"memory_order(?:::|_)([a-z_]+)")
PAIRS_RE = re.compile(r"pairs:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")
RELAXED_NOTE_RE = re.compile(r"relaxed:")
ATOMIC_DECL_RE = re.compile(r"\batomic\s*<[^;<]*?>\s+(\w+)\s*[\[{;=(]")

ACQUIRE_ORDERS = {"acquire", "consume", "acq_rel", "seq_cst"}
RELEASE_ORDERS = {"release", "acq_rel", "seq_cst"}


class Finding:
    def __init__(self, path, line, kind, message):
        self.path = path
        self.line = line
        self.kind = kind
        self.message = message

    def __str__(self):
        rel = os.path.relpath(self.path, REPO_ROOT)
        return f"{rel}:{self.line}: [{self.kind}] {self.message}"


class Site:
    """One atomic operation: location, kind, orders, attached comments."""

    def __init__(self, path, line, op, recv, orders, comments):
        self.path = path
        self.line = line
        self.op = op
        self.recv = recv
        self.orders = orders
        self.comments = comments  # list of comment strings
        self.tags = []
        for c in comments:
            m = PAIRS_RE.search(c)
            if m:
                self.tags.extend(t.strip() for t in m.group(1).split(","))
        self.justified_relaxed = any(RELAXED_NOTE_RE.search(c) for c in comments)

    @property
    def kind(self):
        if self.op in READ_OPS:
            return "read"
        if self.op in WRITE_OPS:
            return "write"
        if self.op == "fence":
            return "fence"
        return "rmw"

    @property
    def acquire_side(self):
        return self.kind in ("read", "rmw", "fence") and bool(
            self.orders & ACQUIRE_ORDERS)

    @property
    def release_side(self):
        return self.kind in ("write", "rmw", "fence") and bool(
            self.orders & RELEASE_ORDERS)

    @property
    def relaxed_only(self):
        return self.orders == {"relaxed"}


def strip_comments_line(line):
    """Remove a trailing // comment, ignoring // inside string literals."""
    out = []
    in_str = None
    i = 0
    while i < len(line):
        ch = line[i]
        if in_str:
            if ch == "\\":
                out.append(line[i:i + 2])
                i += 2
                continue
            if ch == in_str:
                in_str = None
            out.append(ch)
        else:
            if ch in "\"'":
                in_str = ch
                out.append(ch)
            elif ch == "/" and line[i:i + 2] == "//":
                break
            else:
                out.append(ch)
        i += 1
    return "".join(out)


def line_comment(line):
    code = strip_comments_line(line)
    rest = line[len(code):]
    return rest.strip() if rest.strip().startswith("//") else ""


def is_comment_only(line):
    s = line.strip()
    return s.startswith("//")


def statement_start(code_lines, idx):
    """Walk up from line idx to the first line of the enclosing statement."""
    while idx > 0:
        prev = code_lines[idx - 1].rstrip()
        if not prev.strip():
            break
        if is_comment_only(prev):
            break
        if prev.endswith((";", "{", "}", ":", ")")) and not prev.endswith("::"):
            # `)` ends for(...)/if(...) headers; treat as a boundary too.
            break
        idx -= 1
    return idx


def attached_comments(raw_lines, code_lines, start_idx, end_idx):
    comments = []
    for i in range(start_idx, min(end_idx + 1, len(raw_lines))):
        c = line_comment(raw_lines[i])
        if c:
            comments.append(c)
    stmt = statement_start(code_lines, start_idx)
    j = stmt - 1
    block = []
    while j >= 0 and is_comment_only(raw_lines[j]):
        block.append(raw_lines[j].strip())
        j -= 1
    comments.extend(reversed(block))
    return comments


def span_end(code_lines, line_idx, col):
    """Index of the line holding the matching ')' for the '(' at (line, col)."""
    depth = 0
    i, j = line_idx, col
    while i < len(code_lines):
        line = code_lines[i]
        while j < len(line):
            ch = line[j]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return i
            j += 1
        i += 1
        j = 0
    return line_idx


def scan_file(path):
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()
    code_lines = [strip_comments_line(l) for l in raw_lines]

    sites = []
    findings = []

    for idx, code in enumerate(code_lines):
        for m in list(OP_RE.finditer(code)) + list(FENCE_RE.finditer(code)):
            if m.re is OP_RE:
                op = m.group(1)
                recv = code[:m.start()].strip().split()[-1] if code[:m.start()].strip() else "?"
                recv = re.split(r"[^\w.\->\[\]_]", recv)[-1] or "?"
            else:
                op = "fence"
                recv = "fence"
            open_col = code.index("(", m.end() - 1)
            end_idx = span_end(code_lines, idx, open_col)
            span_text = "\n".join(code_lines[idx:end_idx + 1])
            orders = set(ORDER_RE.findall(span_text))
            comments = attached_comments(raw_lines, code_lines, idx, end_idx)
            sites.append(Site(path, idx + 1, op, recv, orders, comments))

    # Operator-form access on std::atomic variables declared in this file.
    atomic_names = set()
    for code in code_lines:
        for m in ATOMIC_DECL_RE.finditer(code):
            atomic_names.add(m.group(1))
    def is_declaration_init(code, match_start):
        # `T name = init` / `T* name = init` / `, name = default` declare a
        # plain variable that merely shares the atomic's name; only flag
        # assignments whose target can actually be the atomic itself.
        prefix = code[:match_start].rstrip()
        return bool(prefix) and (prefix[-1].isalnum()
                                 or prefix[-1] in "_>*&,")

    for idx, code in enumerate(code_lines):
        for name in atomic_names:
            if "atomic" in code and ATOMIC_DECL_RE.search(code):
                continue  # declaration (brace-init) line
            hit = False
            for pat in (
                    rf"(?<![\w.>]){re.escape(name)}\s*(\+\+|--)",
                    rf"(\+\+|--)\s*{re.escape(name)}\b",
                    rf"(?<![\w.>]){re.escape(name)}\s*(\+=|-=|\|=|&=|\^=)",
            ):
                if re.search(pat, code):
                    hit = True
                    break
            if not hit:
                m = re.search(
                    rf"(?<![\w.>]){re.escape(name)}\s*(?<![<>=!+\-*/&|^])=(?![=])",
                    code)
                hit = bool(m) and not is_declaration_init(code, m.start())
            if hit:
                findings.append(Finding(
                    path, idx + 1, "operator-form",
                    f"operator access on std::atomic '{name}' "
                    f"(implicit seq_cst); use explicit "
                    f".load/.store/.fetch_* with a named order"))
    return sites, findings


def audit_sites(sites, catalog, check_coverage, catalog_path):
    findings = []
    tag_release = {}
    tag_acquire = {}

    for s in sites:
        where = f"{s.recv}.{s.op}" if s.op != "fence" else "fence"
        if not s.orders:
            findings.append(Finding(
                s.path, s.line, "implicit-order",
                f"{where} does not name a std::memory_order "
                f"(seq_cst default is banned; spell it out)"))
            continue
        if s.kind == "write" and s.orders & {"acquire", "acq_rel", "consume"}:
            findings.append(Finding(
                s.path, s.line, "invalid-order",
                f"{where}: store with an acquire-class order is undefined"))
        if s.kind == "read" and s.orders & {"release", "acq_rel"}:
            findings.append(Finding(
                s.path, s.line, "invalid-order",
                f"{where}: load with a release-class order is undefined"))
        if s.relaxed_only:
            if not s.justified_relaxed:
                findings.append(Finding(
                    s.path, s.line, "unjustified-relaxed",
                    f"{where} is memory_order_relaxed without a "
                    f"'// relaxed: <why>' justification"))
            continue
        if s.acquire_side or s.release_side:
            if not s.tags:
                findings.append(Finding(
                    s.path, s.line, "missing-pairs",
                    f"{where} ({'/'.join(sorted(s.orders))}) has no "
                    f"'// pairs: <tag>' naming its publication edge"))
            for t in s.tags:
                if t not in catalog:
                    findings.append(Finding(
                        s.path, s.line, "unknown-tag",
                        f"pairs tag '{t}' is not in the catalog "
                        f"(tools/memory_model.json)"))
                    continue
                if s.release_side:
                    tag_release.setdefault(t, []).append(s)
                if s.acquire_side:
                    tag_acquire.setdefault(t, []).append(s)

    if check_coverage:
        for t in sorted(catalog):
            rel = tag_release.get(t, [])
            acq = tag_acquire.get(t, [])
            if rel and not acq:
                s = rel[0]
                findings.append(Finding(
                    s.path, s.line, "orphan-release",
                    f"tag '{t}' has release sites but no acquire observer "
                    f"in the scanned sources"))
            elif acq and not rel:
                s = acq[0]
                findings.append(Finding(
                    s.path, s.line, "unpaired-acquire",
                    f"tag '{t}' has acquire sites but no release publisher "
                    f"in the scanned sources"))
            elif not rel and not acq:
                findings.append(Finding(
                    catalog_path, 1, "stale-catalog",
                    f"catalog tag '{t}' has no sites in the scanned sources"))
    return findings


def collect_files(roots):
    files = []
    for r in roots:
        p = r if os.path.isabs(r) else os.path.join(REPO_ROOT, r)
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for dirpath, _dirs, names in os.walk(p):
                for n in sorted(names):
                    if n.endswith(SOURCE_EXTS):
                        files.append(os.path.join(dirpath, n))
        else:
            print(f"atomic_audit: no such path: {r}", file=sys.stderr)
            sys.exit(2)
    return files


# ---------------------------------------------------------------- AST mode --


#: Versioned binary names distros ship without a bare `clang++` symlink
#: (newest first, matching the CI pin range).
CLANG_VERSIONS = range(19, 14, -1)


def find_clangxx():
    candidates = [os.environ.get("JIFFY_CLANGXX"), "clang++"]
    candidates += [f"clang++-{v}" for v in CLANG_VERSIONS]
    candidates.append("clang")
    candidates += [f"clang-{v}" for v in CLANG_VERSIONS]
    for cand in candidates:
        if cand and shutil.which(cand):
            return shutil.which(cand)
    return None


def ast_sites(compdb_dir, tu_substring, audited_files):
    """(file, line) pairs for atomic member ops clang sees in one TU."""
    clangxx = find_clangxx()
    if clangxx is None:
        print("atomic_audit: --compdb needs clang++ (set $JIFFY_CLANGXX)",
              file=sys.stderr)
        sys.exit(2)
    compdb_path = os.path.join(compdb_dir, "compile_commands.json")
    if not os.path.isfile(compdb_path):
        print(f"atomic_audit: {compdb_path} not found "
              f"(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)",
              file=sys.stderr)
        sys.exit(2)
    with open(compdb_path, encoding="utf-8") as f:
        compdb = json.load(f)
    entry = None
    for e in compdb:
        if tu_substring in e["file"]:
            entry = e
            break
    if entry is None:
        print(f"atomic_audit: no TU matching '{tu_substring}' in compdb",
              file=sys.stderr)
        sys.exit(2)

    if "arguments" in entry:
        args = list(entry["arguments"])[1:]
    else:
        args = entry["command"].split()[1:]
    # Drop -o/-c and any GCC-only flags clang chokes on; add the dump flags.
    cleaned = []
    skip = False
    for a in args:
        if skip:
            skip = False
            continue
        if a == "-o":
            skip = True
            continue
        if a in ("-c", "-fconcepts-diagnostics-depth=2"):
            continue
        cleaned.append(a)
    cmd = [clangxx] + cleaned + [
        "-fsyntax-only", "-Wno-everything", "-Xclang", "-ast-dump=json"]
    proc = subprocess.run(cmd, cwd=entry.get("directory", compdb_dir),
                          capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"atomic_audit: clang AST dump failed:\n{proc.stderr[-2000:]}",
              file=sys.stderr)
        sys.exit(2)
    tree = json.loads(proc.stdout)

    audited = {os.path.realpath(p) for p in audited_files}
    out = set()
    # clang only emits file/line when they change; carry them while walking.
    def walk(node, cur):
        if not isinstance(node, dict):
            return
        loc = node.get("loc") or {}
        for key in ("file", "line"):
            src = loc.get(key)
            if src is None and "expansionLoc" in loc:
                src = loc["expansionLoc"].get(key)
            if src is not None:
                cur = {**cur, key: src}
        if (node.get("kind") == "MemberExpr"
                and node.get("name") in ALL_OPS
                and cur.get("file")
                and os.path.realpath(cur["file"]) in audited):
            out.add((os.path.realpath(cur["file"]), cur.get("line")))
        for child in node.get("inner", []) or []:
            walk(child, cur)

    walk(tree, {})
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("roots", nargs="*", default=None,
                    help="files/dirs to audit (default: src bench/harness.h)")
    ap.add_argument("--catalog", default=DEFAULT_CATALOG,
                    help="pairs-tag catalog JSON (default: tools/memory_model.json)")
    ap.add_argument("--no-coverage", action="store_true",
                    help="skip per-tag release/acquire coverage checks "
                         "(for partial scans)")
    ap.add_argument("--compdb", metavar="BUILD_DIR",
                    help="cross-check against a clang AST dump of one TU from "
                         "BUILD_DIR/compile_commands.json")
    ap.add_argument("--ast-tu", default="tests/",
                    help="substring selecting the TU for --compdb "
                         "(default: tests/)")
    ap.add_argument("--list-sites", action="store_true",
                    help="print every recognised atomic site and exit")
    args = ap.parse_args()

    with open(args.catalog, encoding="utf-8") as f:
        catalog = json.load(f)["pairs"]

    files = collect_files(args.roots or DEFAULT_ROOTS)
    sites = []
    findings = []
    for p in files:
        s, f = scan_file(p)
        sites.extend(s)
        findings.extend(f)

    if args.list_sites:
        for s in sites:
            rel = os.path.relpath(s.path, REPO_ROOT)
            print(f"{rel}:{s.line}: {s.recv}.{s.op} "
                  f"[{','.join(sorted(s.orders)) or 'IMPLICIT'}] "
                  f"tags={','.join(s.tags) or '-'}")
        return 0

    findings.extend(
        audit_sites(sites, catalog, not args.no_coverage, args.catalog))

    if args.compdb:
        text_locs = {(os.path.realpath(s.path), s.line) for s in sites}
        for file, line in sorted(ast_sites(args.compdb, args.ast_tu, files)):
            if (file, line) not in text_locs:
                findings.append(Finding(
                    file, line or 0, "ast-missed",
                    "clang AST sees an atomic member operation here that the "
                    "text scan did not recognise"))

    findings.sort(key=lambda f: (f.path, f.line, f.kind))
    for f in findings:
        print(f)
    n_files = len(files)
    print(f"atomic_audit: {len(sites)} sites in {n_files} files, "
          f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
