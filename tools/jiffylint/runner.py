"""CLI/orchestration for jiffylint + atomic_audit (see tools/lint.py)."""

import argparse
import json
import os
import subprocess
import sys

from . import PASS_NAMES, astmode, cas_hygiene, guard_escape, pubgraph, retire
from .textscan import REPO_ROOT, audit

PASS_RUNNERS = {
    "guard": guard_escape.run,
    "retire": retire.run,
    "cas": cas_hygiene.run,
    "pubgraph": pubgraph.run,
}


def load_catalog(path):
    with open(path, encoding="utf-8") as f:
        catalog = json.load(f)
    catalog["__path__"] = path
    return catalog


def run_audit_subprocess(roots, catalog_path, no_coverage, compdb, ast_tu):
    """atomic_audit keeps its own CLI contract; drive it as a subprocess and
    fold its findings into ours."""
    cmd = [sys.executable, os.path.join(REPO_ROOT, "tools", "atomic_audit.py"),
           "--catalog", catalog_path]
    if no_coverage:
        cmd.append("--no-coverage")
    if compdb:
        cmd.extend(["--compdb", compdb, "--ast-tu", ast_tu])
    cmd.extend(roots)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode == 2:
        sys.stderr.write(proc.stderr)
        sys.exit(2)
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    return lines, proc.returncode


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="lint.py",
        description="Concurrency lint driver: the jiffylint protocol passes "
                    "(guard-escape, retire-after-unlink, CAS hygiene, "
                    "publication graph) plus the atomics memory-order audit, "
                    "behind one CLI. Exit 0 clean, 1 findings, 2 environment "
                    "error.")
    ap.add_argument("roots", nargs="*",
                    help="files/dirs to lint (default: src bench/harness.h)")
    ap.add_argument("--catalog", default=audit.DEFAULT_CATALOG,
                    help="memory-model catalog JSON "
                         "(default: tools/memory_model.json)")
    ap.add_argument("--passes", default=",".join(PASS_NAMES),
                    help=f"comma list from {{{','.join(PASS_NAMES)}}} "
                         f"(default: all)")
    ap.add_argument("--no-audit", action="store_true",
                    help="skip the atomic_audit subprocess (fixture runs)")
    ap.add_argument("--no-coverage", action="store_true",
                    help="skip catalog-coverage checks (partial scans)")
    ap.add_argument("--compdb", metavar="BUILD_DIR",
                    help="clang AST cross-check against one TU from "
                         "BUILD_DIR/compile_commands.json")
    ap.add_argument("--ast-tu", default="tests/",
                    help="substring selecting the TU for --compdb "
                         "(default: tests/)")
    ap.add_argument("--output", metavar="FILE",
                    help="also write findings (and the summary) to FILE")
    ap.add_argument("--list-regions", action="store_true",
                    help="print discovered guard regions and exit")
    args = ap.parse_args(argv)

    passes = [p.strip() for p in args.passes.split(",") if p.strip()]
    unknown = [p for p in passes if p not in PASS_NAMES]
    if unknown:
        print(f"lint: unknown pass(es): {', '.join(unknown)} "
              f"(choose from {', '.join(PASS_NAMES)})", file=sys.stderr)
        return 2

    catalog = load_catalog(args.catalog)
    roots = args.roots or audit.DEFAULT_ROOTS
    files = audit.collect_files(roots)

    if args.list_regions:
        guard_escape.run(files, catalog, list_regions=True)
        return 0

    findings = []
    counts = {}
    for p in passes:
        if p == "guard":
            got = guard_escape.run(files, catalog)
        else:
            got = PASS_RUNNERS[p](files, catalog,
                                  check_coverage=not args.no_coverage)
        counts[p] = len(got)
        findings.extend(got)

    if args.compdb:
        got = astmode.run(files, args.compdb, args.ast_tu)
        counts["ast"] = len(got)
        findings.extend(got)

    lines = [str(f) for f in findings]
    if not args.no_audit:
        audit_lines, audit_rc = run_audit_subprocess(
            roots, args.catalog, args.no_coverage, args.compdb, args.ast_tu)
        counts["audit"] = len(audit_lines)
        lines.extend(audit_lines)

    lines.sort()
    for l in lines:
        print(l)
    summary = (f"lint: {len(lines)} finding(s) in {len(files)} files ("
               + ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
               + ")")
    print(summary, file=sys.stderr)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write("\n".join(lines + [summary]) + "\n")

    return 1 if lines else 0
