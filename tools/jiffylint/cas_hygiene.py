"""Pass 3 — CAS-loop hygiene.

compare_exchange misuse the type system permits but the protocol does not:

  weak-outside-loop      compare_exchange_weak may fail spuriously; outside
                         a retry loop a spurious failure is a lost update.
  strong-tight-loop      `while (!x.compare_exchange_strong(...)) ;` with an
                         empty body — weak is the correct (cheaper) form
                         when the loop re-tries unconditionally.
  stale-expected         a loop that can `continue` back past the CAS
                         without ever reassigning `expected` retries with a
                         value the failed iteration already invalidated —
                         the classic ABA shape. (The canonical push loop —
                         `do { n->next = head; } while (!cas(head, ...)); `
                         — is fine: the failure writeback is the reload.)
  invalid-failure-order  failure order with release semantics is undefined.
  failure-stronger-than-success
                         C++17 relaxed the rule, but a failure order above
                         the success order is still a smell this codebase
                         bans.
  cas-tag-order          a CAS carrying a `pairs:` tag whose success order
                         cannot provide the semantics the catalog direction
                         assigns to CAS sites of that edge.
"""

import re

from . import textscan
from .textscan import Finding
from .pubgraph import parse_direction

CAS_RE = re.compile(r"[\w\]\)](?:\.|->)\s*compare_exchange_(weak|strong)\s*\(")
ORDER_SEQ_RE = re.compile(r"memory_order(?:::|_)([a-z_]+)")
CONTINUE_RE = re.compile(r"(^|[^\w])continue\s*;")

ORDER_RANK = {"relaxed": 0, "consume": 1, "acquire": 2, "release": 2,
              "acq_rel": 3, "seq_cst": 4}
RELEASE_CAPABLE = {"release", "acq_rel", "seq_cst"}
ACQUIRE_CAPABLE = {"acquire", "consume", "acq_rel", "seq_cst"}
IDENT_RE = re.compile(r"^\s*&?\s*(\w+)\s*$")


def first_arg(span_text, open_off):
    """The expected-expression: first top-level comma-delimited argument."""
    depth = 0
    i = open_off
    start = open_off + 1
    while i < len(span_text):
        ch = span_text[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                return span_text[start:i]
        elif ch == "," and depth == 1:
            return span_text[start:i]
        i += 1
    return span_text[start:]


def reassigned_in(src, name, lo, hi):
    """True if `name` is (re)assigned/declared anywhere in lines [lo, hi)."""
    pats = (
        rf"(?<![\w.>]){re.escape(name)}\s*(?:\[[^\]]*\])?\s*=(?![=])",
        rf"(\+\+|--)\s*{re.escape(name)}\b",
        rf"(?<![\w.>]){re.escape(name)}\s*(\+\+|--|[+\-|&^]=)",
        rf"\[[^\]]*\b{re.escape(name)}\b[^\]]*\]\s*[:=]",
        rf"[&*]\s*{re.escape(name)}\s*[,)]",  # passed by address/out-param
    )
    for i in range(max(0, lo), min(hi, len(src.code_lines))):
        code = src.code_lines[i]
        if any(re.search(p, code) for p in pats):
            return True
    return False


def run(files, catalog, check_coverage=True):
    pairs_catalog = catalog.get("pairs", {})
    findings = []
    for path in files:
        src = textscan.SourceFile(path)
        for idx, code in enumerate(src.code_lines):
            for m in CAS_RE.finditer(code):
                strength = m.group(1)
                open_col = code.index("(", m.end() - 1)
                send, scol = src.span_close(idx, open_col)
                span = "\n".join(
                    src.code_lines[i][
                        (open_col if i == idx else 0):
                        (scol + 1 if i == send else None)]
                    for i in range(idx, send + 1))
                orders = ORDER_SEQ_RE.findall(span)
                loop = src.loop_start(idx)
                line = idx + 1
                where = f"compare_exchange_{strength}"

                if strength == "weak" and loop is None:
                    findings.append(Finding(
                        path, line, "weak-outside-loop",
                        f"{where} outside any retry loop: a spurious "
                        f"failure is unhandled (use _strong, or loop)"))

                if strength == "strong":
                    stmt_start, _e, stmt = src.statement_text(idx)
                    if re.search(
                            r"(^|[^\w])while\s*\(\s*!", stmt) and \
                            stmt_start <= idx:
                        after = src.code_lines[send][scol + 1:].strip()
                        if send + 1 < len(src.code_lines) and (
                                after in (")", "") or after.endswith("(")):
                            after += " " + \
                                src.code_lines[send + 1].strip()
                        if re.match(r"^\)\s*(;|\{\s*\})", after):
                            findings.append(Finding(
                                path, line, "strong-tight-loop",
                                f"{where} as the whole body of a retry "
                                f"loop: use compare_exchange_weak (no "
                                f"work is lost on spurious failure and "
                                f"it is cheaper on LL/SC targets)"))

                if loop is not None:
                    im = IDENT_RE.match(first_arg(span, 0))
                    if im:
                        name = im.group(1)
                        if CONTINUE_RE.search("\n".join(
                                src.code_lines[loop:idx])) and \
                                not reassigned_in(src, name, loop, idx):
                            findings.append(Finding(
                                path, line, "stale-expected",
                                f"{where}: a continue path can re-reach "
                                f"this CAS without reloading expected "
                                f"'{name}' — it retries with a value the "
                                f"failed iteration already invalidated "
                                f"(reload it at the top of the loop)"))

                if len(orders) >= 2:
                    succ, fail = orders[0], orders[1]
                    if fail in ("release", "acq_rel"):
                        findings.append(Finding(
                            path, line, "invalid-failure-order",
                            f"{where}: failure order memory_order_{fail} "
                            f"is undefined (failure is a pure load)"))
                    elif ORDER_RANK.get(fail, 0) > ORDER_RANK.get(succ, 0):
                        findings.append(Finding(
                            path, line, "failure-stronger-than-success",
                            f"{where}: failure order {fail} is stronger "
                            f"than success order {succ}"))

                # Tagged CAS: the success order must be able to supply the
                # semantics the catalog assigns to CAS sites of this edge.
                comments = src.comments_for(idx, send)
                tags = []
                for c in comments:
                    tm = textscan.audit.PAIRS_RE.search(c)
                    if tm:
                        tags.extend(t.strip()
                                    for t in tm.group(1).split(","))
                succ = orders[0] if orders else None
                for t in tags:
                    entry = pairs_catalog.get(t)
                    if entry is None or succ is None:
                        continue  # unknown-tag / implicit-order: audit's job
                    dirspec = parse_direction(entry.get("direction"))
                    if dirspec is None:
                        continue  # schema-missing: pubgraph's job
                    rel_ops, acq_ops = dirspec
                    if "cas" in rel_ops and succ not in RELEASE_CAPABLE:
                        findings.append(Finding(
                            path, line, "cas-tag-order",
                            f"{where} tagged '{t}': catalog direction "
                            f"makes CAS a release side of this edge, but "
                            f"success order {succ} has no release "
                            f"semantics"))
                    elif "cas" in acq_ops and "cas" not in rel_ops and \
                            succ not in ACQUIRE_CAPABLE:
                        findings.append(Finding(
                            path, line, "cas-tag-order",
                            f"{where} tagged '{t}': catalog direction "
                            f"makes CAS an acquire side of this edge, but "
                            f"success order {succ} has no acquire "
                            f"semantics"))
    return findings
