"""Pass 2 — retire-after-unlink.

ebr::retire hands memory to the collector on the promise that no new
references can be created — i.e. the object was unlinked (install CAS
replaced the last pointer to it) or condemned (the purge protocol's sticky
flag plus a clean post-drain sweep). The compiler cannot check that
promise, so every retire site must name the protocol edge that makes it
true:

    ebr::retire_fn(x, &delete_dead_node);  // unlink: purge-shell

The tag is declared in the `unlink` section of tools/memory_model.json (the
machine-readable form of the DESIGN.md §9 reclamation catalog). Each entry
describes the dominating unlink and lists, under `via`, the publication-
edge tags (from the `pairs` catalog) whose release sites perform it. The
pass verifies:

  * every retire call site carries `// unlink: <tag>` (or
    JIFFY_LINT_UNLINK(tag))                                → unjustified-retire
  * the tag exists in the unlink catalog                   → unknown-unlink-tag
  * its `via` edges exist in the pairs catalog             → unlink-bad-ref
  * each via edge has at least one release-capable site in
    the scanned sources (delete the install CAS and the
    retire that depended on it starts failing)             → unlink-missing-edge
  * no unlink catalog entry is dead                        → stale-unlink

src/ebr/ itself is excluded: it is the collector's implementation, not a
protocol user (its internal retire_fn forwarding is the mechanism the tags
describe).
"""

import os
import re

from . import textscan
from .textscan import Finding, audit

RETIRE_RE = re.compile(r"\bebr::retire(?:_fn)?\s*\(|\bretire_shell\s*\(")
EBR_IMPL_DIR = os.path.join("src", "ebr")


def is_ebr_impl(path):
    rel = os.path.relpath(path, textscan.REPO_ROOT)
    return rel.startswith(EBR_IMPL_DIR + os.sep) or rel == EBR_IMPL_DIR


def retire_sites(src):
    """[(line_idx, tags, span_end)] for retire calls in one SourceFile."""
    out = []
    for idx, code in enumerate(src.code_lines):
        m = RETIRE_RE.search(code)
        if m is None:
            continue
        open_col = code.index("(", m.end() - 1)
        send, _c = src.span_close(idx, open_col)
        comments = src.comments_for(idx, send)
        tags = []
        for c in comments:
            tags.extend(textscan.UNLINK_RE.findall(c))
        span = " ".join(src.code_lines[i] for i in range(idx, send + 1))
        tags.extend(textscan.UNLINK_MACRO_RE.findall(span))
        out.append((idx, tags, send))
    return out


def run(files, catalog, check_coverage=True):
    unlink_catalog = catalog.get("unlink", {})
    pairs_catalog = catalog.get("pairs", {})
    findings = []
    used_tags = set()

    # Release-capable pairs sites in the scanned sources, per tag — the
    # ground truth that a via edge actually exists in the code.
    release_tags = set()
    for path in files:
        sites, _f = audit.scan_file(path)
        for s in sites:
            if s.release_side:
                release_tags.update(s.tags)

    for path in files:
        if is_ebr_impl(path):
            continue
        src = textscan.SourceFile(path)
        for idx, tags, _send in retire_sites(src):
            line = idx + 1
            if not tags:
                findings.append(Finding(
                    path, line, "unjustified-retire",
                    "retire call without '// unlink: <tag>' naming the "
                    "unlink CAS / condemn marker that dominates it "
                    "(catalog: tools/memory_model.json `unlink`)"))
                continue
            for t in tags:
                used_tags.add(t)
                entry = unlink_catalog.get(t)
                if entry is None:
                    findings.append(Finding(
                        path, line, "unknown-unlink-tag",
                        f"unlink tag '{t}' is not in the catalog "
                        f"(tools/memory_model.json `unlink`)"))
                    continue
                for via in entry.get("via", []):
                    if via not in pairs_catalog:
                        findings.append(Finding(
                            path, line, "unlink-bad-ref",
                            f"unlink tag '{t}' references pairs tag "
                            f"'{via}' which is not in the catalog"))
                    elif via not in release_tags:
                        findings.append(Finding(
                            path, line, "unlink-missing-edge",
                            f"unlink tag '{t}' claims dominance via "
                            f"'{via}', but no release site of that edge "
                            f"exists in the scanned sources"))

    if check_coverage:
        for t in sorted(unlink_catalog):
            if t not in used_tags:
                findings.append(Finding(
                    catalog.get("__path__", "memory_model.json"), 1,
                    "stale-unlink",
                    f"unlink catalog tag '{t}' has no retire sites in the "
                    f"scanned sources"))
    return findings
