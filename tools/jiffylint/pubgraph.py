"""Pass 4 — publication-graph verification.

The pairing audit (atomic_audit.py) proves every `pairs:` tag has both a
release and an acquire side. That is necessary but not sufficient: a tag
can pair up and still be wrong — the acquire side may dereference a field
no release edge ever published, the catalog may claim a direction the code
does not implement, or an object's edges may form a cycle or fall apart
into disconnected islands (a sign the catalog no longer describes one
coherent protocol).

Schema (tools/memory_model.json, per pairs tag):

    "object"        struct whose memory the edge publishes ("Revision", ...)
    "direction"     "<release ops> -> <acquire ops>", ops from
                    {store, cas, rmw, fence, load}
    "publishes"     fields guaranteed initialized before the release
    "acquire_reads" fields the acquire side dereferences
    "after"         optional: tags whose publication this edge depends on
                    (the publication DAG; cross-object edges allowed)

Checks:
  schema-missing       a tag lacking the v2 keys or with a malformed
                       direction
  unknown-after        `after` names a tag not in the catalog
  pub-cycle            the `after` graph has a cycle (publication order
                       cannot be circular)
  disconnected-object  an object with >= 2 tags whose tags share no `after`
                       connectivity — the catalog describes two unrelated
                       protocols under one object name
  unpublished-field    an acquire side dereferences a field no release edge
                       of the same object publishes (the one-sided-tag trap
                       the pairing audit cannot see)
  direction-mismatch   a source site whose op/order role is not permitted
                       by its tag's declared direction
"""

import re

from . import textscan
from .textscan import Finding, audit

OP_CLASSES = {"store", "cas", "rmw", "fence", "load"}
DIRECTION_RE = re.compile(r"^\s*([a-z, ]+?)\s*->\s*([a-z, ]+?)\s*$")

REQUIRED_KEYS = ("object", "direction", "publishes", "acquire_reads")


def parse_direction(spec):
    """'store,cas -> load,cas' -> (set, set); None if malformed/absent."""
    if not isinstance(spec, str):
        return None
    m = DIRECTION_RE.match(spec)
    if not m:
        return None
    rel = {s.strip() for s in m.group(1).split(",") if s.strip()}
    acq = {s.strip() for s in m.group(2).split(",") if s.strip()}
    if not rel or not acq or (rel | acq) - OP_CLASSES:
        return None
    return rel, acq


def op_class(site):
    if site.op == "fence":
        return "fence"
    if site.op in audit.READ_OPS:
        return "load"
    if site.op in audit.WRITE_OPS:
        return "store"
    if site.op.startswith("compare_exchange"):
        return "cas"
    return "rmw"


def catalog_findings(catalog, catalog_path, check_coverage=True):
    pairs = catalog.get("pairs", {})
    findings = []
    valid = {}

    for tag in sorted(pairs):
        entry = pairs[tag]
        missing = [k for k in REQUIRED_KEYS if k not in entry]
        dirspec = parse_direction(entry.get("direction"))
        if missing:
            findings.append(Finding(
                catalog_path, 1, "schema-missing",
                f"pairs tag '{tag}' lacks publication-graph keys: "
                f"{', '.join(missing)}"))
            continue
        if dirspec is None:
            findings.append(Finding(
                catalog_path, 1, "schema-missing",
                f"pairs tag '{tag}' has a malformed direction "
                f"'{entry.get('direction')}' (want e.g. 'store,cas -> "
                f"load,cas')"))
            continue
        valid[tag] = entry
        for dep in entry.get("after", []):
            if dep not in pairs:
                findings.append(Finding(
                    catalog_path, 1, "unknown-after",
                    f"pairs tag '{tag}' declares after: '{dep}' which is "
                    f"not in the catalog"))

    # Cycle detection over the after DAG (valid entries only).
    color = {}
    stack = []

    def visit(tag):
        color[tag] = 1
        stack.append(tag)
        for dep in valid.get(tag, {}).get("after", []):
            if dep not in valid:
                continue
            if color.get(dep) == 1:
                cyc = stack[stack.index(dep):] + [dep]
                findings.append(Finding(
                    catalog_path, 1, "pub-cycle",
                    f"publication order cycle: {' -> '.join(cyc)}"))
            elif color.get(dep, 0) == 0:
                visit(dep)
        stack.pop()
        color[tag] = 2

    for tag in sorted(valid):
        if color.get(tag, 0) == 0:
            visit(tag)

    # Per-object checks: published-field closure and connectivity.
    by_object = {}
    for tag, entry in valid.items():
        by_object.setdefault(entry["object"], []).append(tag)

    for obj in sorted(by_object):
        tags = sorted(by_object[obj])
        published = set()
        for t in tags:
            published.update(valid[t].get("publishes", []))
        for t in tags:
            for f in valid[t].get("acquire_reads", []):
                if f not in published:
                    findings.append(Finding(
                        catalog_path, 1, "unpublished-field",
                        f"tag '{t}' (object {obj}): acquire side reads "
                        f"field '{f}' but no release edge of {obj} "
                        f"publishes it"))
        if len(tags) >= 2 and check_coverage:
            parent = {t: t for t in tags}

            def find(t):
                while parent[t] != t:
                    parent[t] = parent[parent[t]]
                    t = parent[t]
                return t

            for t in tags:
                for dep in valid[t].get("after", []):
                    if dep in parent:
                        parent[find(t)] = find(dep)
            roots = {find(t) for t in tags}
            if len(roots) > 1:
                groups = {}
                for t in tags:
                    groups.setdefault(find(t), []).append(t)
                findings.append(Finding(
                    catalog_path, 1, "disconnected-object",
                    f"object {obj}: release->acquire graph is "
                    f"disconnected: "
                    + " | ".join(",".join(g)
                                 for g in sorted(groups.values()))))
    return findings, valid


def site_findings(files, valid):
    findings = []
    for path in files:
        sites, _f = audit.scan_file(path)
        for s in sites:
            for t in s.tags:
                entry = valid.get(t)
                if entry is None:
                    continue  # unknown-tag / schema-missing handled above
                rel_ops, acq_ops = parse_direction(entry["direction"])
                cls = op_class(s)
                roles_ok = []
                if s.release_side:
                    roles_ok.append(cls in rel_ops)
                if s.acquire_side:
                    roles_ok.append(cls in acq_ops)
                if roles_ok and not any(roles_ok):
                    findings.append(Finding(
                        s.path, s.line, "direction-mismatch",
                        f"{s.recv}.{s.op} tagged '{t}': a {cls} cannot "
                        f"play any side of the declared direction "
                        f"'{entry['direction']}'"))
    return findings


def run(files, catalog, check_coverage=True):
    catalog_path = catalog.get("__path__", "memory_model.json")
    findings, valid = catalog_findings(catalog, catalog_path, check_coverage)
    findings.extend(site_findings(files, valid))
    return findings
