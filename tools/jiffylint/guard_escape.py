"""Pass 1 — guard-escape / lifetime.

A raw pointer to EBR-protected memory (node, revision, version cell, entry)
obtained inside a guard region is only valid while that guard is alive.
This pass flags statements that let such a pointer outlive the region:

  * a store into a member field (`name_ = p`, `this->name_ = p`, or a
    member-container mutation like `pending_.push_back(p)`) — members
    outlive any lexical guard;
  * a `return p;` from a *local*-guard region (functions annotated
    JIFFY_REQUIRES_GUARD may return protected pointers: their caller holds
    the guard).

Protected pointers are tracked per region: declarations whose type names a
protected struct (including through `*`, arrays and template arguments),
`new <ProtectedType>` bindings, and structured bindings whose initializer
mentions a tracked pointer or the region's guard (anything derived from a
guarded call is itself guarded).

Suppression: `// escapes: <why>` attached to the statement (trailing or in
the comment block above it, same attachment rule as the audit) or a
JIFFY_LINT_ESCAPES(why) marker in the statement. The justification should
say which mechanism re-protects the pointer (a member guard, a flag
handoff, quiescence), not what the line does.
"""

import re

from . import textscan
from .textscan import Finding

DEFAULT_PROTECTED_TYPES = (
    "JiffyNode", "Node", "Rev", "Revision", "Entry", "VersionCell",
    "LfNode", "BatchDescriptor",
)

MEMBER_STORE_RE = re.compile(r"(?:^|[^\w.>])(?:this->)?(\w+_)"
                             r"\s*(?:\[[^\]]*\])?\s*=(?![=])")
MEMBER_CONTAINER_RE = re.compile(
    r"(?:^|[^\w.>])(?:this->)?(\w+_)\s*\.\s*"
    r"(push_back|emplace_back|emplace|insert|push|assign|append)\s*\(")
RETURN_RE = re.compile(r"(^|[^\w])return($|[^\w])")
BINDING_RE = re.compile(r"\bauto\s*&?\s*\[([^\]]+)\]\s*([:=])")
NEW_RE_TMPL = r"\bauto\s*\*?\s*(?:const\s+)?(\w+)\s*=\s*new\s+(?:{types})\b"
# Callees whose return value aggregates its pointer arguments — passing a
# guarded pointer to these DOES escape it through the return value.
AGGREGATING_CALLEES_RE = re.compile(
    r"^(?:std\s*::\s*)?(?:make_pair|make_tuple|pair|tuple|tie|"
    r"forward_as_tuple)\s*$")
CALL_HEAD_RE = re.compile(r"^\s*([\w:]+)\s*\(")


def _return_escapes(expr, tracked):
    """True when `return <expr>;` lets a tracked pointer leave the region.

    Two refinements over a bare name search:
      * boolean/comparison uses (`!p`, `p == q`, `p != nullptr`, `p ? a : b`)
        yield a value, not the pointer — strip them first;
      * a single top-level call `f(p, ...)` runs while the guard is held;
        only its *result* escapes, and f is analyzed on its own (except the
        std aggregators above, which pack the pointer into the result).
    """
    expr = expr.strip().rstrip(";").strip()
    m = CALL_HEAD_RE.match(expr)
    if m and not AGGREGATING_CALLEES_RE.match(m.group(1)):
        depth = 0
        for i in range(m.end() - 1, len(expr)):
            if expr[i] == "(":
                depth += 1
            elif expr[i] == ")":
                depth -= 1
                if depth == 0:
                    if not expr[i + 1:].strip():
                        return False  # the call IS the whole expression
                    break
    for name in tracked:
        n = re.escape(name)
        expr = re.sub(rf"!\s*{n}\b", " ", expr)
        expr = re.sub(rf"\b{n}\s*(==|!=|<=|>=|\?)", r" \1", expr)
        expr = re.sub(rf"(==|!=)\s*{n}\b", r"\1 ", expr)
    return textscan.has_bare_use(expr, tracked)


def _decl_res(types):
    t = "|".join(types)
    return [
        # Type* name / Type *name / Type** name / const Type* const name —
        # terminated like a declarator (also `,`/`)` for parameters and `:`
        # for range-for).
        re.compile(rf"\b(?:{t})\b(?:<[^;()]*>)?[\s*&]*\*[\s*]*"
                   rf"(?:const\s+)?(\w+)\s*(?:[=;,)\[:]|$)"),
        # A container/pair holding protected pointers: the whole object is
        # guard-lifetime (vector<pair<Node*, u64>> cand; ...).
        re.compile(rf"<[^;=]*\b(?:{t})\s*\*[^;=]*>\s*&?\s*(\w+)\s*(?:[;{{=(]|$)"),
        re.compile(NEW_RE_TMPL.format(types=t)),
    ]


def scan(src, protected_types=None, list_regions=False):
    types = tuple(protected_types or DEFAULT_PROTECTED_TYPES)
    decl_res = _decl_res(types)
    findings = []
    regions, _macros = textscan.find_guard_regions(src)
    if list_regions:
        for r in regions:
            print(f"{src.path}:{r.start + 1}-{r.end + 1}: "
                  f"{r.kind} guard '{r.guard}'")

    for region in regions:
        tracked = set()
        flagged_stmts = set()
        for idx in range(region.start, min(region.end + 1,
                                           len(src.code_lines))):
            code = src.code_lines[idx]
            if not code.strip():
                continue
            # Grow the tracked set first: declarations on this line.
            for dre in decl_res:
                for m in dre.finditer(code):
                    tracked.add(m.group(1))
            bm = BINDING_RE.search(code)
            if bm:
                _s, _e, stmt = src.statement_text(idx)
                init = stmt[stmt.find("]") + 1:]
                if textscan.has_bare_use(init, tracked | {region.guard}):
                    tracked.update(
                        n.strip() for n in bm.group(1).split(",") if n.strip())
            if not tracked:
                continue

            escape = None
            ms = MEMBER_STORE_RE.search(code)
            if ms:
                _s, send, stmt = src.statement_text(idx)
                rhs = stmt[stmt.find("=", stmt.find(ms.group(1))) + 1:]
                if textscan.has_bare_use(rhs, tracked):
                    escape = (f"guarded pointer stored to member "
                              f"'{ms.group(1)}' outlives guard "
                              f"'{region.guard}'")
            if escape is None:
                mc = MEMBER_CONTAINER_RE.search(code)
                if mc:
                    _s, send, stmt = src.statement_text(idx)
                    args = stmt[stmt.find(mc.group(2)) :]
                    if textscan.has_bare_use(args, tracked):
                        escape = (f"guarded pointer stored into member "
                                  f"container '{mc.group(1)}' outlives "
                                  f"guard '{region.guard}'")
            if escape is None and region.kind == "local":
                if RETURN_RE.search(code):
                    _s, send, stmt = src.statement_text(idx)
                    if _return_escapes(
                            stmt[stmt.find("return") + 6:], tracked):
                        escape = (f"guarded pointer returned past local "
                                  f"guard '{region.guard}' "
                                  f"(scope ends at line {region.end + 1})")
            if escape is None:
                continue

            stmt_start, span_end, _stmt = src.statement_text(idx)
            if stmt_start in flagged_stmts:
                continue
            comments = src.comments_for(stmt_start, span_end)
            code_span = " ".join(
                src.code_lines[i] for i in range(stmt_start, span_end + 1))
            if any(textscan.ESCAPES_RE.search(c) for c in comments) or \
                    textscan.ESCAPES_MACRO_RE.search(code_span):
                continue
            flagged_stmts.add(stmt_start)
            findings.append(Finding(
                src.path, idx + 1, "guard-escape",
                escape + "; justify with '// escapes: <why>' if re-protected"))
    return findings


def run(files, catalog, list_regions=False):
    protected = catalog.get("protected_types") or DEFAULT_PROTECTED_TYPES
    findings = []
    for path in files:
        findings.extend(scan(textscan.SourceFile(path), protected,
                             list_regions))
    return findings
