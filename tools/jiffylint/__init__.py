"""jiffylint — protocol-level static analysis for the Jiffy engine.

Four passes over the sources (DESIGN.md §11), layered on top of the
memory-order audit in tools/atomic_audit.py:

  guard     guard-escape / lifetime: a raw node or revision pointer obtained
            inside an ebr::Guard scope (local RAII guard or a
            JIFFY_REQUIRES_GUARD entry point) must not be stored to a member
            field or returned past the guard's lifetime unless the site
            carries a `// escapes: <why>` justification.
  retire    retire-after-unlink: every ebr::retire / ebr::retire_fn /
            retire_shell call site names the unlink edge that dominates it
            via `// unlink: <tag>`, keyed off the `unlink` catalog in
            tools/memory_model.json (the machine-readable DESIGN.md §9
            reclamation protocol).
  cas       CAS-loop hygiene: weak-outside-loop, strong-in-tight-loop,
            ABA-prone retries whose `expected` is never reloaded on a
            continue path, invalid/over-strong failure orders, and tagged
            CAS orders inconsistent with the catalog direction.
  pubgraph  publication-graph verification: every pairs tag in the catalog
            declares its object, direction (release ops -> acquire ops),
            published-field set and acquire-read set; the per-object
            release→acquire graph must be connected and acyclic, no acquire
            side may dereference a field no release edge publishes, and
            source sites must match their tag's declared direction.

Entry point: tools/lint.py (runs these passes plus atomic_audit behind one
CLI, text mode by default, clang AST cross-check with --compdb).
"""

PASS_NAMES = ("guard", "retire", "cas", "pubgraph")
