"""`python3 -m jiffylint` (with tools/ on sys.path) — same CLI as
tools/lint.py, which is the documented entry point."""

import sys

from .runner import main

if __name__ == "__main__":
    sys.exit(main())
