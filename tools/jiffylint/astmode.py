"""Clang AST cross-check for the jiffylint text passes.

Mirrors atomic_audit.py's --compdb mode: dump one translation unit from
compile_commands.json as JSON (`clang++ -Xclang -ast-dump=json`) and verify
the text scan's site discovery against what the compiler actually parsed.
The AST is treated as ground truth for *existence*; the protocol reasoning
stays in the text passes (so the degraded text mode and the AST mode can
never disagree about rules, only about coverage).

Cross-checks (each a finding when the AST sees a site the text scan missed):

  ast-missed-cas     compare_exchange_{weak,strong} MemberExprs
  ast-missed-retire  DeclRefExprs to ebr::retire / retire_fn / retire_shell
                     (src/ebr/ excluded, same as the retire pass)
  ast-missed-guard   RequiresCapabilityAttr expansion sites
                     (JIFFY_REQUIRES / JIFFY_REQUIRES_GUARD macro lines)

Requires a clang++ ($JIFFY_CLANGXX honoured); exits 2 via SystemExit when
none is found, matching atomic_audit.
"""

import json
import os
import subprocess
import sys

from . import textscan, retire
from .textscan import Finding, audit

CAS_OPS = {"compare_exchange_weak", "compare_exchange_strong"}
RETIRE_FNS = {"retire", "retire_fn", "retire_shell"}


def dump_tu(compdb_dir, tu_substring):
    """Parsed AST JSON of the first TU matching tu_substring."""
    clangxx = audit.find_clangxx()
    if clangxx is None:
        print("jiffylint: --compdb needs clang++ (set $JIFFY_CLANGXX)",
              file=sys.stderr)
        sys.exit(2)
    compdb_path = os.path.join(compdb_dir, "compile_commands.json")
    if not os.path.isfile(compdb_path):
        print(f"jiffylint: {compdb_path} not found "
              f"(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)",
              file=sys.stderr)
        sys.exit(2)
    with open(compdb_path, encoding="utf-8") as f:
        compdb = json.load(f)
    entry = next((e for e in compdb if tu_substring in e["file"]), None)
    if entry is None:
        print(f"jiffylint: no TU matching '{tu_substring}' in compdb",
              file=sys.stderr)
        sys.exit(2)
    if "arguments" in entry:
        args = list(entry["arguments"])[1:]
    else:
        args = entry["command"].split()[1:]
    cleaned = []
    skip = False
    for a in args:
        if skip:
            skip = False
            continue
        if a == "-o":
            skip = True
            continue
        if a in ("-c", "-fconcepts-diagnostics-depth=2"):
            continue
        cleaned.append(a)
    cmd = [clangxx] + cleaned + [
        "-fsyntax-only", "-Wno-everything", "-Xclang", "-ast-dump=json"]
    proc = subprocess.run(cmd, cwd=entry.get("directory", compdb_dir),
                          capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"jiffylint: clang AST dump failed:\n{proc.stderr[-2000:]}",
              file=sys.stderr)
        sys.exit(2)
    return json.loads(proc.stdout)


def collect_ast_sites(tree, audited):
    """(cas, retire, guard) location sets clang sees in audited files."""
    cas, ret, guard = set(), set(), set()

    def norm_loc(loc, cur):
        for key in ("file", "line"):
            src = loc.get(key)
            if src is None and "expansionLoc" in loc:
                src = loc["expansionLoc"].get(key)
            if src is not None:
                cur = {**cur, key: src}
        return cur

    def walk(node, cur):
        if not isinstance(node, dict):
            return
        cur = norm_loc(node.get("loc") or {}, cur)
        if "range" in node and "loc" not in node:
            cur = norm_loc((node["range"].get("begin") or {}), cur)
        f = cur.get("file")
        here = os.path.realpath(f) if f else None
        if here in audited:
            kind = node.get("kind")
            if kind == "MemberExpr" and node.get("name") in CAS_OPS:
                cas.add((here, cur.get("line")))
            elif kind == "DeclRefExpr":
                rd = node.get("referencedDecl") or {}
                if rd.get("name") in RETIRE_FNS and \
                        rd.get("kind") == "FunctionDecl":
                    ret.add((here, cur.get("line")))
            elif kind == "RequiresCapabilityAttr":
                guard.add((here, cur.get("line")))
        for child in node.get("inner", []) or []:
            walk(child, cur)

    walk(tree, {})
    return cas, ret, guard


def run(files, compdb_dir, tu_substring):
    """Cross-check findings: AST sites the text passes did not discover."""
    audited = {os.path.realpath(p) for p in files}
    tree = dump_tu(compdb_dir, tu_substring)
    ast_cas, ast_ret, ast_guard = collect_ast_sites(tree, audited)

    text_cas, text_ret, text_guard = set(), set(), set()
    for path in files:
        real = os.path.realpath(path)
        src = textscan.SourceFile(path)
        sites, _f = audit.scan_file(path)
        for s in sites:
            if s.op in CAS_OPS:
                text_cas.add((real, s.line))
        if not retire.is_ebr_impl(path):
            for idx, _tags, _send in retire.retire_sites(src):
                text_ret.add((real, idx + 1))
        _regions, macro_lines = textscan.find_guard_regions(src)
        for ln in macro_lines:
            text_guard.add((real, ln))

    findings = []
    checks = (
        (ast_cas, text_cas, 0, "ast-missed-cas",
         "clang sees a compare_exchange here that the text scan missed"),
        ({loc for loc in ast_ret
          if not retire.is_ebr_impl(loc[0])}, text_ret, 0,
         "ast-missed-retire",
         "clang sees an ebr::retire call here that the text scan missed"),
        # Attr locations can land a line off the macro on wrapped
        # signatures; this is an existence check, so allow a small window.
        (ast_guard, text_guard, 2, "ast-missed-guard",
         "clang sees a RequiresCapabilityAttr here that the text scan "
         "missed"),
    )
    for ast_set, text_set, fuzz, kind, msg in checks:
        for file, line in sorted(ast_set):
            if line is not None and any(
                    (file, line + d) in text_set
                    for d in range(-fuzz, fuzz + 1)):
                continue
            findings.append(Finding(file, line or 0, kind, msg))
    return findings
