"""Shared text-scan machinery for the jiffylint passes.

Reuses tools/atomic_audit.py for the pieces that must stay consistent with
the audit (comment stripping, the comment-attachment rule, call-span
tracking, file collection, Finding formatting) and adds what the protocol
passes need on top: brace-scope tracking, guard-region discovery, loop
detection and protected-pointer tracking.

Everything here is line-based and heuristic by design — the clang AST mode
(astmode.py) cross-checks that the text scan does not miss sites.
"""

import os
import re
import sys

TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if TOOLS_DIR not in sys.path:
    sys.path.insert(0, TOOLS_DIR)

import atomic_audit as audit  # noqa: E402

Finding = audit.Finding
REPO_ROOT = audit.REPO_ROOT

ESCAPES_RE = re.compile(r"escapes:\s*\S")
ESCAPES_MACRO_RE = re.compile(r"\bJIFFY_LINT_ESCAPES\s*\(")
UNLINK_RE = re.compile(r"unlink:\s*([a-z0-9-]+)")
UNLINK_MACRO_RE = re.compile(r"\bJIFFY_LINT_UNLINK\s*\(\s*([a-z0-9-]+)\s*\)")

# Local RAII guard construction. Members follow the `name_` convention and
# are excluded (a member guard is a class invariant, not a lexical scope;
# SnapCursor/Snapshot document theirs via JIFFY_REQUIRES(guard_, ...)).
GUARD_LOCAL_RE = re.compile(r"\bebr::Guard\s+(\w+)\s*[;({]")
REQUIRES_RE = re.compile(r"\bJIFFY_REQUIRES(?:_GUARD)?\s*\(\s*(\w+)")
GUARD_PARAM_RE = re.compile(r"ebr::Guard\s*&\s*(\w+)")

LOOP_HEADER_RE = re.compile(r"(^|[^\w])(for|while|do)($|[^\w])")


class SourceFile:
    """One scanned file: raw/code lines plus brace-depth geometry."""

    def __init__(self, path):
        self.path = path
        with open(path, encoding="utf-8") as f:
            self.raw_lines = f.read().splitlines()
        self.code_lines = [audit.strip_comments_line(l) for l in self.raw_lines]
        self._depths()

    def _scan_braces(self, line, depth):
        """Brace depth after `line`, skipping string and char literals."""
        i = 0
        while i < len(line):
            ch = line[i]
            if ch in "\"'":
                q = ch
                i += 1
                while i < len(line):
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == q:
                        break
                    i += 1
            elif ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
            i += 1
        return depth

    def _depths(self):
        # pre_depth[i] = brace depth at the start of line i.
        self.pre_depth = []
        d = 0
        for line in self.code_lines:
            self.pre_depth.append(d)
            d = self._scan_braces(line, d)
        self.pre_depth.append(d)

    def statement_text(self, idx, max_lines=8):
        """(start, end, joined code) of the statement containing line idx."""
        start = audit.statement_start(self.code_lines, idx)
        end = idx
        while (end < len(self.code_lines) - 1 and end - start < max_lines
               and not self.code_lines[end].rstrip().endswith(
                   (";", "{", "}", ":"))):
            end += 1
        return start, end, " ".join(
            self.code_lines[i].strip() for i in range(start, end + 1))

    def comments_for(self, start_idx, end_idx):
        return audit.attached_comments(
            self.raw_lines, self.code_lines, start_idx, end_idx)

    def scope_end(self, decl_idx):
        """Last line of the brace scope a statement at decl_idx lives in."""
        d = self.pre_depth[decl_idx]
        for j in range(decl_idx + 1, len(self.code_lines)):
            if self.pre_depth[j] < d:
                return j - 1
        return len(self.code_lines) - 1

    def body_after(self, idx, col):
        """(open_line, close_line) of the first {...} block after (idx, col),
        or None if a ';' occurs first (pure declaration)."""
        i, j = idx, col
        while i < len(self.code_lines):
            line = self.code_lines[i]
            while j < len(line):
                ch = line[j]
                if ch == ";":
                    return None
                if ch == "{":
                    d_open = self._scan_braces(line[:j], self.pre_depth[i]) + 1
                    if i + 1 >= len(self.code_lines) or \
                            self.pre_depth[i + 1] < d_open:
                        return i, i  # body opened and closed on one line
                    return i, self.scope_end(i + 1)
                j += 1
            i += 1
            j = 0
        return None

    def span_close(self, idx, open_col):
        """(line, col) of the ')' matching the '(' at (idx, open_col)."""
        depth = 0
        i, j = idx, open_col
        while i < len(self.code_lines):
            line = self.code_lines[i]
            while j < len(line):
                ch = line[j]
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth == 0:
                        return i, j
                j += 1
            i += 1
            j = 0
        return idx, max(0, len(self.code_lines[idx]) - 1)

    def loop_start(self, idx):
        """Header-statement start line of the innermost loop enclosing line
        idx, or None. Handles brace bodies, sites inside the loop header
        itself (`while (x.compare_exchange...)`), the do{}while footer, and
        a braceless loop body directly under its header."""
        stmt_start, _e, stmt = self.statement_text(idx)
        # Site in a for/while header.
        if re.search(r"(^|[^\w])(for|while)\s*\(", stmt) and not re.match(
                r"\s*\}", self.code_lines[stmt_start]):
            return stmt_start
        # Site in a do { ... } while(cond) footer: find the matching `do`.
        if re.match(r"\s*\}\s*while\s*\(", self.code_lines[stmt_start]):
            d = self.pre_depth[stmt_start]
            for k in range(stmt_start - 1, -1, -1):
                if self.pre_depth[k] < d:
                    return k
            return None
        # Braceless body: the previous statement is a header ending in `)`.
        if stmt_start > 0:
            prev = self.code_lines[stmt_start - 1].rstrip()
            if prev.endswith(")"):
                _hs, _he, header = self.statement_text(stmt_start - 1)
                if re.search(r"(^|[^\w])(for|while)\s*\(", header):
                    return audit.statement_start(
                        self.code_lines, stmt_start - 1)
        # Walk up the scope openers.
        cur = self.pre_depth[idx]
        for k in range(idx - 1, -1, -1):
            if self.pre_depth[k] < cur:
                cur = self.pre_depth[k]
                hs, _he, header = self.statement_text(k)
                if LOOP_HEADER_RE.search(header):
                    return hs
        return None


def bare_use_re(name):
    """A use of `name` as the pointer value itself: not a member access on
    it, not a call, not a field of another object, not a dereference."""
    return re.compile(
        rf"(?<![\w.*])(?<!>){re.escape(name)}\b(?!\s*(?:->|\.|\(|::))")


def has_bare_use(text, names):
    return any(bare_use_re(n).search(text) for n in names)


class GuardRegion:
    """A lexical range in which raw node/revision pointers are guard-
    protected. kind 'local': RAII ebr::Guard in a block — protected pointers
    must not outlive it at all. kind 'requires': body of a
    JIFFY_REQUIRES_GUARD function — the caller holds the guard, so returning
    a protected pointer is sanctioned there, but member-field stores still
    are not."""

    def __init__(self, kind, guard, start, end):
        self.kind = kind
        self.guard = guard
        self.start = start
        self.end = end


def find_guard_regions(src):
    """All guard regions in a SourceFile, plus the (line) set of
    JIFFY_REQUIRES macro sites (for the AST cross-check)."""
    regions = []
    macro_lines = set()
    for idx, code in enumerate(src.code_lines):
        m = GUARD_LOCAL_RE.search(code)
        if m and not m.group(1).endswith("_"):
            regions.append(GuardRegion(
                "local", m.group(1), idx, src.scope_end(idx)))
            continue
        m = REQUIRES_RE.search(code)
        if m:
            macro_lines.add(idx + 1)
            body = src.body_after(idx, m.end())
            if body is None:
                continue
            sig_start = audit.statement_start(src.code_lines, idx)
            sig = " ".join(src.code_lines[i] for i in range(sig_start, idx + 1))
            pm = GUARD_PARAM_RE.search(sig)
            guard = pm.group(1) if pm else m.group(1)
            regions.append(GuardRegion("requires", guard, sig_start, body[1]))
    return regions, macro_lines
