#!/usr/bin/env python3
"""Unified concurrency lint driver (DESIGN.md §10–§11).

Runs the four jiffylint protocol passes (guard-escape, retire-after-unlink,
CAS hygiene, publication-graph verification) and the atomics memory-order
audit behind one CLI:

  tools/lint.py                      # text mode over src/ + bench/harness.h
  tools/lint.py --compdb build-tsa   # + clang AST cross-checks
  tools/lint.py --passes cas src/    # a single pass over explicit roots
  tools/lint.py --output findings.txt  # CI artifact

Exit codes: 0 clean, 1 findings, 2 usage/environment error.
See tools/README.md for the rule set and the suppression grammar
(`// escapes: <why>`, `// unlink: <tag>`, `// relaxed: <why>`,
`// pairs: <tag>`).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from jiffylint.runner import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
