#!/usr/bin/env python3
"""Decode a Jiffy binary event trace (--trace=<file>, src/obs/trace.h).

File layout (little-endian):
    header: char magic[8] = "JFTRACE1", u32 version, u32 event_size,
            u64 event_count, u64 ticks_per_sec_hint (0 = unknown)
    events: event_count 32-byte records {u64 ts, u64 a, u64 b,
            u16 kind, u16 tag, u32 tid}, grouped by per-thread ring,
            oldest-first within a ring. Timestamps are raw TSC ticks and
            only order events within one tid.

Usage:
    tools/traceview.py trace.bin                # listing, per-tid ts order
    tools/traceview.py trace.bin --stats        # summary only
    tools/traceview.py trace.bin --kind=retire  # filter: sched|retire|epoch
    tools/traceview.py trace.bin --tid=3 --limit=50

The decoder mirrors the append-only kind/tag tables in src/obs/trace.h and
the schedule-point names in src/core/schedule_points.h; extend all three
together.
"""

import argparse
import struct
import sys
from collections import Counter

HEADER = struct.Struct("<8sIIQQ")
EVENT = struct.Struct("<QQQHHI")
MAGIC = b"JFTRACE1"

KIND_NAMES = {1: "sched", 2: "retire", 3: "epoch"}
RETIRE_TAGS = {1: "rev_unref", 2: "rev_unref_immediate", 3: "purge_shell"}
# sched::Point catalog (src/core/schedule_points.h kPointNames).
POINT_NAMES = [
    "plain_stamp", "split_link", "split_stamp",
    "batch_install", "batch_watermark", "batch_stamp",
    "merge_marker", "merge_stamp", "purge_retire",
]


def read_trace(path):
    """Returns (header dict, list of event tuples (ts, a, b, kind, tag, tid))."""
    with open(path, "rb") as f:
        raw = f.read(HEADER.size)
        if len(raw) < HEADER.size:
            raise ValueError("truncated header")
        magic, version, event_size, count, ticks_hint = HEADER.unpack(raw)
        if magic != MAGIC:
            raise ValueError(f"bad magic {magic!r} (want {MAGIC!r})")
        if event_size != EVENT.size:
            raise ValueError(f"event_size {event_size} != {EVENT.size}")
        body = f.read(count * EVENT.size)
        if len(body) < count * EVENT.size:
            raise ValueError(
                f"truncated body: header claims {count} events, "
                f"file holds {len(body) // EVENT.size}")
        events = list(EVENT.iter_unpack(body))
    return (
        {"version": version, "event_count": count, "ticks_hint": ticks_hint},
        events,
    )


def describe(ev):
    ts, a, b, kind, tag, tid = ev
    kname = KIND_NAMES.get(kind, f"kind{kind}")
    if kind == 1:  # sched point
        what = POINT_NAMES[tag] if tag < len(POINT_NAMES) else f"point{tag}"
        detail = ""
    elif kind == 2:  # retire
        what = RETIRE_TAGS.get(tag, f"tag{tag}")
        detail = f" ptr=0x{a:012x} bytes={b}"
    elif kind == 3:  # epoch advance
        what = f"-> {a}"
        detail = ""
    else:
        what = f"tag={tag}"
        detail = f" a=0x{a:x} b=0x{b:x}"
    return f"{ts:>20d}  tid={tid:<4d} {kname:<7s} {what}{detail}"


def print_stats(header, events, out):
    kinds = Counter(e[3] for e in events)
    tids = Counter(e[5] for e in events)
    retire_tags = Counter(e[4] for e in events if e[3] == 2)
    retire_ptrs = Counter(e[1] for e in events if e[3] == 2)
    retire_bytes = sum(e[2] for e in events if e[3] == 2)
    print(f"events: {len(events)} (header: {header['event_count']}, "
          f"version {header['version']})", file=out)
    print(f"threads: {len(tids)} "
          f"({', '.join(f'tid {t}: {n}' for t, n in sorted(tids.items()))})",
          file=out)
    for k, n in sorted(kinds.items()):
        print(f"  {KIND_NAMES.get(k, f'kind{k}')}: {n}", file=out)
    for t, n in sorted(retire_tags.items()):
        print(f"    retire/{RETIRE_TAGS.get(t, f'tag{t}')}: {n}", file=out)
    if retire_ptrs:
        print(f"  retired bytes: {retire_bytes}, "
              f"distinct pointers: {len(retire_ptrs)}", file=out)
        # The retire stream must be unique per pointer within a window: the
        # same address retired twice WITHOUT an intervening reallocation is
        # exactly the double-retire signature the ROADMAP's heap-corruption
        # hunt wants surfaced. Address reuse across long runs is legitimate
        # (the allocator recycles), so this is a lead, not a verdict.
        dupes = {p: n for p, n in retire_ptrs.items() if n > 1}
        if dupes:
            worst = sorted(dupes.items(), key=lambda kv: -kv[1])[:5]
            print(f"  reused retire addresses: {len(dupes)} "
                  f"(top: {', '.join(f'0x{p:x} x{n}' for p, n in worst)})",
                  file=out)
    epochs = [e[1] for e in events if e[3] == 3]
    if epochs:
        print(f"  epoch range: {min(epochs)} .. {max(epochs)}", file=out)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="binary trace file from --trace=/JIFFY_TRACE")
    ap.add_argument("--stats", action="store_true", help="summary only")
    ap.add_argument("--kind", choices=sorted(KIND_NAMES.values()),
                    help="only this event kind")
    ap.add_argument("--tid", type=int, help="only this thread id")
    ap.add_argument("--limit", type=int, default=0,
                    help="print at most N events (0 = all)")
    args = ap.parse_args()

    try:
        header, events = read_trace(args.trace)
    except (OSError, ValueError) as e:
        print(f"traceview: {args.trace}: {e}", file=sys.stderr)
        return 1

    if args.stats:
        print_stats(header, events, sys.stdout)
        return 0

    want_kind = None
    if args.kind:
        want_kind = {v: k for k, v in KIND_NAMES.items()}[args.kind]
    shown = 0
    # ts is only monotone per tid: sort by (tid, ts) so each thread's
    # protocol history reads in order; never interleave tids by raw ts.
    for ev in sorted(events, key=lambda e: (e[5], e[0])):
        if want_kind is not None and ev[3] != want_kind:
            continue
        if args.tid is not None and ev[5] != args.tid:
            continue
        print(describe(ev))
        shown += 1
        if args.limit and shown >= args.limit:
            break
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piped through head/less that quit early; not an error. Detach
        # stdout so the interpreter's shutdown flush doesn't re-raise.
        sys.stdout = None
        sys.exit(0)
