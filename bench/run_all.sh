#!/usr/bin/env bash
# Runs every figure and ablation binary and drops one CSV per bench into
# BENCH_RESULTS/. Defaults are the small-machine grid (DESIGN.md §2); pass
# --paper through to any figure via EXTRA_ARGS.
#
#   ./bench/run_all.sh                 # small grid, native indices only
#   ./bench/run_all.sh --quick         # CI-sized cells (short secs/entries)
#   EXTRA_ARGS="--paper" ./bench/run_all.sh
#   BUILD_DIR=build-foo ./bench/run_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT_DIR=${OUT_DIR:-BENCH_RESULTS}
EXTRA_ARGS=${EXTRA_ARGS:-}
# Stub adapters (see baselines/registry.h) measure a locked std::map, not
# the paper's baselines; sweep only the native indices unless overridden.
INDICES=${INDICES:-"jiffy cslm"}

for arg in "$@"; do
  case "$arg" in
    --quick)
      # Tiny cells so the whole CSV sweep fits in a CI job; prepended so an
      # explicit EXTRA_ARGS still wins (last flag parsed wins in the CLI).
      EXTRA_ARGS="--seconds=0.05 --warmup=0.05 --entries=4000 --threads=1,2 ${EXTRA_ARGS}"
      ;;
    *)
      echo "unknown flag: $arg (supported: --quick)" >&2
      exit 2
      ;;
  esac
done

if [ ! -x "$BUILD_DIR/fig6_uniform_4_4" ]; then
  echo "building into $BUILD_DIR ..."
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j >/dev/null
fi

mkdir -p "$OUT_DIR"
stamp=$(date +%Y%m%d_%H%M%S)

for fig in fig5_uniform_16_100 fig6_uniform_4_4 fig8_zipf_16_100 fig10_zipf_4_4; do
  out="$OUT_DIR/${fig}_${stamp}.csv"
  echo "== $fig -> $out"
  : > "$out"
  for idx in $INDICES; do
    # One metrics dump per (figure, index) invocation: the harness writes
    # the whole file at exit, so sharing a path across runs would clobber.
    # check_scaling.py --metrics= accepts the flag repeatedly; glob them.
    metrics="$OUT_DIR/${fig}_${idx}_${stamp}.metrics.json"
    # shellcheck disable=SC2086
    "$BUILD_DIR/$fig" --index="$idx" --metrics="$metrics" $EXTRA_ARGS | { [ -s "$out" ] && tail -n +2 || cat; } >> "$out"
  done
done

for abl in ablation_clock ablation_hash_index ablation_revision_size; do
  out="$OUT_DIR/${abl}_${stamp}.csv"
  echo "== $abl -> $out"
  # shellcheck disable=SC2086
  "$BUILD_DIR/$abl" $EXTRA_ARGS > "$out"
done

if [ -x "$BUILD_DIR/micro_components" ]; then
  out="$OUT_DIR/micro_components_${stamp}.csv"
  echo "== micro_components -> $out"
  "$BUILD_DIR/micro_components" --benchmark_format=csv > "$out"
fi

echo "done: $(ls "$OUT_DIR" | grep -c "$stamp") files in $OUT_DIR/"
