// Figure-regeneration harness (paper §4).
//
// Reproduces the microbenchmark of the evaluation: per-thread single-role
// workloads (update / lookup / range-scan threads), four scenarios, batch
// modes (simple, 10-op, 100-op × sequential/random), uniform or Zipfian key
// choice, both key/value shapes, swept over a thread grid for every index.
//
// Scenarios (paper §4.2, plus the range/reverse extension):
//   a: 100% update threads
//   b: 25% update, 75% lookup
//   c: 25% update, 50% lookup, 25% scan (100 entries)
//   d: 25% update, 50% lookup, 25% scan (10000 entries)
//   e: 25% update, 25% lookup, 25% bounded-range scan ([k, k+100)),
//      25% reverse scan (100 entries descending) — exercises the
//      MapApi range_scan/rscan_n surface on every index
//
// Reported numbers are millions of *basic operations* per second: one
// put/remove/get counts 1, a scan over n entries counts n, a B-op batch
// counts B. Each row also reports the update-only throughput — the appendix
// figures (7-10) are the same runs with that second series plotted.
//
// Scale: defaults target a small machine (see DESIGN.md §2 scale note); pass
// --paper for the full 10M-entry, 96-thread grid of the paper's testbed.
// Latency columns (ISSUE 10, DESIGN.md §15): every CSV row carries
// p50/p99/p999 microseconds over the cell's sampled per-op latencies. Two
// recording modes:
//   * closed loop (default): service time of 1 op in 4, two TSC reads per
//     sampled op (~16 ns) — cheap enough to stay inside the §15 overhead
//     budget, but a stalled op delays the next op's start, so tails are
//     understated under saturation (classic coordinated omission);
//   * open loop (--rate=R): ops are dispatched on a fixed schedule of
//     intended start times (R ops/sec split across the cell's workers) and
//     every latency is completion MINUS INTENDED start — a stall shows up
//     in every queued op behind it, never skipped, making the percentiles
//     coordinated-omission-free.
// --metrics=<file> additionally dumps per-cell counter deltas + per-role
// histograms as JSON (schema jiffy-metrics-v1; read by check_scaling.py).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>
#if defined(__GLIBC__)
#include <malloc.h>  // mallopt: single-core arena clamp in run_figure
#endif

#include "baselines/adapters.h"
#include "common/striped_counter.h"  // CachePadded
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "tsc/clock.h"
#include "workload/keyvalue.h"
#include "workload/rng.h"

namespace jiffy::bench {

enum class Scenario {
  kUpdateOnly,
  kUpdateLookup,
  kMixedShortScan,
  kMixedLongScan,
  kMixedRange,
};

inline const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kUpdateOnly: return "a_update";
    case Scenario::kUpdateLookup: return "b_lookup75";
    case Scenario::kMixedShortScan: return "c_scan100";
    case Scenario::kMixedLongScan: return "d_scan10k";
    case Scenario::kMixedRange: return "e_range";
  }
  return "?";
}

struct BatchMode {
  std::size_t size = 0;  // 0 = simple put/remove
  bool sequential = false;

  std::string name() const {
    if (size == 0) return "simple";
    return "b" + std::to_string(size) + (sequential ? "_seq" : "_rand");
  }
};

struct RunConfig {
  std::string figure;
  std::string kv_shape;
  KeyChooser::Kind dist = KeyChooser::Kind::Uniform;
  std::uint64_t key_space = 40'000;  // 2x entries, like the paper's 20M/10M
  std::uint64_t entries = 20'000;
  double seconds = 0.15;
  // Jiffy's autoscaler EMAs are time-weighted (paper §3.3.6 reports ~1-10 s
  // adjustment time); the warmup runs the mix once so measured cells see the
  // adapted revision sizes, not the transient.
  double warmup = 0.5;
  std::vector<int> threads = {1, 2, 4};
  Scenario scenario = Scenario::kUpdateOnly;
  BatchMode batch;
  double zipf_theta = 0.99;
  // Repetitions per cell; the best rep is reported. Short cells on a shared
  // (or single-core, oversubscribed) box are scheduler-noise-dominated, and
  // max-of-N is the standard robust estimator for "what the code can do".
  int reps = 1;
  // Open-loop mode: total intended ops/sec for the cell, split evenly across
  // its workers. 0 = closed loop (see the header comment).
  double rate = 0;
};

// Latency op classes: one histogram per per-thread role kind, merged across
// workers after join. A scan/range op is one whole scan call.
enum LatClass { kLatPut = 0, kLatGet, kLatScan, kLatBatch, kLatClassCount };
inline constexpr const char* kLatClassNames[kLatClassCount] = {"put", "get",
                                                               "scan", "batch"};

struct RowResult {
  double total_mops = 0;
  double update_mops = 0;
  obs::LatHistogram lat[kLatClassCount];  // TSC ticks; see ticks_per_us
  double ticks_per_us = 1.0;              // per-cell calibration
};

inline double hist_pct_us(const obs::LatHistogram& h, double p,
                          double ticks_per_us) {
  if (h.count() == 0 || ticks_per_us <= 0) return 0;
  return static_cast<double>(h.value_at_percentile(p)) / ticks_per_us;
}

// TSC tick rate, measured once per process against steady_clock — used only
// to convert --rate into a pacing interval. Percentile reporting uses the
// tighter per-cell calibration run_cell takes at its own endpoints.
inline double tsc_ticks_per_sec() {
  static const double tps = [] {
    const TscClock c;
    const auto w0 = std::chrono::steady_clock::now();
    const std::uint64_t t0 = c.read();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const std::uint64_t t1 = c.read();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
            .count();
    return s > 0 ? static_cast<double>(t1 - t0) / s : 1e9;
  }();
  return tps;
}

// Per-worker latency instrumentation; strictly single-threaded (one LatMeter
// per worker, merged after join). Compiles to nothing under JIFFY_OBS=0 so
// the obs-off twin bench measures the bare op loop.
struct LatMeter {
  obs::LatHistogram hist;
  TscClock tsc;
  std::uint64_t interval = 0;  // pacing interval in ticks; 0 = closed loop
  std::uint64_t intended = 0;
  std::uint64_t t0 = 0;
  std::uint64_t n = 0;

  void arm() {
#if JIFFY_OBS
    intended = tsc.read();
#endif
  }

  // Call before the op. In open-loop mode waits for the next intended start
  // (never skipping missed slots — the coordinated-omission-free property);
  // returns false when stop was raised mid-wait.
  template <class Stopped>
  bool begin(const Stopped& stopped) {
#if JIFFY_OBS
    if (interval != 0) {
      std::uint64_t now;
      while ((now = tsc.read()) < intended) {
        if (stopped()) return false;
        // Far from the slot, cede the core (these boxes are oversubscribed);
        // inside ~a microsecond, spin so the start lands on schedule.
        if (intended - now > 2048) std::this_thread::yield();
      }
      t0 = intended;  // latency is measured from the INTENDED start
    } else {
      t0 = (n & 3) == 0 ? tsc.read() : 0;  // sampled service time, 1-in-4
    }
#else
    (void)stopped;
#endif
    return true;
  }

  // Call after the op completes.
  void end() {
#if JIFFY_OBS
    ++n;
    if (interval != 0) {
      hist.record(tsc.read() - t0);
      intended += interval;
    } else if (t0 != 0) {
      hist.record(tsc.read() - t0);
    }
#endif
  }
};

// Thread-role split of the paper: indices below are "percent * threads".
// scan_len / range_span are defaulted: only the scan scenarios set them, and
// the update-only branches spell out the no-scanner split explicitly.
struct RoleSplit {
  int updaters = 0;
  int lookups = 0;
  int scanners = 0;
  int rev_scanners = 0;    // rscan_n threads (descending, scan_len entries)
  int rangers = 0;         // range_scan threads ([k, k+range_span) half-open)
  std::size_t scan_len = 0;
  std::uint64_t range_span = 0;  // key-index width of each bounded range
};

inline RoleSplit roles_for(Scenario s, int threads) {
  auto pct = [&](double p) {
    int n = static_cast<int>(p * threads + 0.5);
    return n < 1 ? 1 : n;
  };
  switch (s) {
    case Scenario::kUpdateOnly:
      return {.updaters = threads, .lookups = 0, .scanners = 0};
    case Scenario::kUpdateLookup: {
      const int upd = threads >= 4 ? pct(0.25) : 1;
      return {.updaters = upd, .lookups = threads - upd, .scanners = 0};
    }
    case Scenario::kMixedShortScan:
    case Scenario::kMixedLongScan: {
      int upd = threads >= 4 ? pct(0.25) : 1;
      int scan = threads >= 4 ? pct(0.25) : 1;
      int look = threads - upd - scan;
      if (look < 0) {
        look = 0;
        scan = threads - upd;
        if (scan < 0) scan = 0;
      }
      return {.updaters = upd, .lookups = look, .scanners = scan,
              .scan_len = s == Scenario::kMixedShortScan ? std::size_t{100}
                                                         : std::size_t{10'000}};
    }
    case Scenario::kMixedRange: {
      RoleSplit r;
      r.scan_len = 100;
      r.range_span = 100;
      if (threads < 4) {
        r.updaters = 1;
        if (threads >= 2) r.rangers = 1;
        if (threads >= 3) r.rev_scanners = 1;
        return r;
      }
      r.updaters = pct(0.25);
      r.rangers = pct(0.25);
      r.rev_scanners = pct(0.25);
      r.lookups = threads - r.updaters - r.rangers - r.rev_scanners;
      if (r.lookups < 0) r.lookups = 0;
      return r;
    }
  }
  return {.updaters = threads};
}

// Runs one (index, config, thread-count) cell against a preloaded index.
// The chooser is passed in: it is immutable and identical for the whole
// sweep, and constructing it is O(key_space) for Zipf (the zeta sum), which
// would otherwise be paid once per cell at --paper scale.
template <class K, class V, class Adapter>
  requires MapApi<Adapter>
RowResult run_cell(Adapter& idx, const RunConfig& cfg, int threads,
                   const KeyChooser& chooser) {
  const RoleSplit roles = roles_for(cfg.scenario, threads);

  // start and stop are written by the coordinator while every worker polls
  // them; padded apart so the stop store does not invalidate the line the
  // start spin reads (and neither shares a line with the slot array below).
  CachePadded<std::atomic<bool>> start_pad;
  CachePadded<std::atomic<bool>> stop_pad;
  std::atomic<bool>& start = start_pad.value;
  std::atomic<bool>& stop = stop_pad.value;
  // One counter cacheline per worker, written (plainly — each slot has
  // exactly one writer) at the end of its run and read only after join().
  // The padding keeps the harness from manufacturing the very false sharing
  // the engine's striped counters remove (DESIGN.md §14); the layout
  // contract is static_asserted in tests/test_striped_counter.cpp.
  struct OpSlot {
    std::uint64_t total = 0;
    std::uint64_t updates = 0;
  };
  std::vector<CachePadded<OpSlot>> slots(
      static_cast<std::size_t>(threads > 0 ? threads : 1));
  // Per-worker latency histograms, written once (plainly) by the owner at
  // the end of its run and merged after join. No padding needed: unlike the
  // op slots these are cold until the final write.
  struct LatSlot {
    obs::LatHistogram hist;
    int cls = kLatPut;
  };
  std::vector<LatSlot> lat_slots(
      static_cast<std::size_t>(threads > 0 ? threads : 1));
  // Open-loop pacing: cfg.rate intended ops/sec for the whole cell, split
  // evenly, expressed as a per-worker TSC interval. 0 = closed loop.
  const std::uint64_t pace_ticks =
      cfg.rate > 0 && threads > 0
          ? static_cast<std::uint64_t>(tsc_ticks_per_sec() * threads /
                                       cfg.rate)
          : 0;

  // start is a release/acquire edge (pairs: harness-start-stop) so workers
  // cannot observe it before t0 is taken; stop is relaxed and the per-thread
  // op slots are plain because the joins below order everything written.
  auto stopped = [&stop] {
    // relaxed: advisory stop flag; thread join orders the counter writes.
    return stop.load(std::memory_order_relaxed);
  };

  auto updater = [&](int tid) {
    Rng rng(0xBEEF + static_cast<std::uint64_t>(tid));
    std::uint64_t ops = 0;
    LatMeter lm;
    lm.interval = pace_ticks;
    while (!start.load(std::memory_order_acquire))  // pairs: harness-start-stop
      std::this_thread::yield();  // oversubscribed: let the coordinator run
    lm.arm();
    while (!stopped()) {
      if (!lm.begin(stopped)) break;
      if (cfg.batch.size == 0) {
        const std::uint64_t i = chooser.next_index(rng);
        const K k = KeyCodec<K>::encode(i, cfg.key_space);
        if (rng.next_bool(0.5))
          idx.put(k, ValueCodec<V>::make(i, rng.next()));
        else
          idx.erase(k);
        ++ops;
      } else {
        Batch<K, V> b;
        b.reserve(cfg.batch.size);
        std::uint64_t i = chooser.next_index(rng);
        for (std::size_t j = 0; j < cfg.batch.size; ++j) {
          if (!cfg.batch.sequential) i = chooser.next_index(rng);
          const K k = KeyCodec<K>::encode(i % cfg.key_space, cfg.key_space);
          if (rng.next_bool(0.5))
            b.put(k, ValueCodec<V>::make(i, rng.next()));
          else
            b.erase(k);
          if (cfg.batch.sequential) ++i;
        }
        idx.apply(std::move(b));
        ops += cfg.batch.size;
      }
      lm.end();
    }
    slots[static_cast<std::size_t>(tid)].value = {ops, ops};
    lat_slots[static_cast<std::size_t>(tid)] = {
        lm.hist, cfg.batch.size == 0 ? kLatPut : kLatBatch};
  };

  auto lookup = [&](int tid) {
    Rng rng(0xFACE + static_cast<std::uint64_t>(tid));
    std::uint64_t ops = 0;
    LatMeter lm;
    lm.interval = pace_ticks;
    while (!start.load(std::memory_order_acquire))  // pairs: harness-start-stop
      std::this_thread::yield();  // oversubscribed: let the coordinator run
    lm.arm();
    while (!stopped()) {
      if (!lm.begin(stopped)) break;
      const std::uint64_t i = chooser.next_index(rng);
      idx.get(KeyCodec<K>::encode(i, cfg.key_space));
      ++ops;
      lm.end();
    }
    slots[static_cast<std::size_t>(tid)].value = {ops, 0};
    lat_slots[static_cast<std::size_t>(tid)] = {lm.hist, kLatGet};
  };

  auto scanner = [&](int tid) {
    Rng rng(0x5CA9 + static_cast<std::uint64_t>(tid));
    std::uint64_t ops = 0;
    LatMeter lm;
    lm.interval = pace_ticks;
    while (!start.load(std::memory_order_acquire))  // pairs: harness-start-stop
      std::this_thread::yield();  // oversubscribed: let the coordinator run
    lm.arm();
    while (!stopped()) {
      if (!lm.begin(stopped)) break;
      const std::uint64_t i = chooser.next_index(rng);
      ops += idx.scan_n(KeyCodec<K>::encode(i, cfg.key_space), roles.scan_len,
                        [](const K&, const V&) {});
      lm.end();
    }
    slots[static_cast<std::size_t>(tid)].value = {ops, 0};
    lat_slots[static_cast<std::size_t>(tid)] = {lm.hist, kLatScan};
  };

  auto rev_scanner = [&](int tid) {
    Rng rng(0xD15C + static_cast<std::uint64_t>(tid));
    std::uint64_t ops = 0;
    LatMeter lm;
    lm.interval = pace_ticks;
    while (!start.load(std::memory_order_acquire))  // pairs: harness-start-stop
      std::this_thread::yield();  // oversubscribed: let the coordinator run
    lm.arm();
    while (!stopped()) {
      if (!lm.begin(stopped)) break;
      const std::uint64_t i = chooser.next_index(rng);
      ops += idx.rscan_n(KeyCodec<K>::encode(i, cfg.key_space),
                         roles.scan_len, [](const K&, const V&) {});
      lm.end();
    }
    slots[static_cast<std::size_t>(tid)].value = {ops, 0};
    lat_slots[static_cast<std::size_t>(tid)] = {lm.hist, kLatScan};
  };

  auto ranger = [&](int tid) {
    Rng rng(0x7A11 + static_cast<std::uint64_t>(tid));
    std::uint64_t ops = 0;
    LatMeter lm;
    lm.interval = pace_ticks;
    while (!start.load(std::memory_order_acquire))  // pairs: harness-start-stop
      std::this_thread::yield();  // oversubscribed: let the coordinator run
    lm.arm();
    while (!stopped()) {
      if (!lm.begin(stopped)) break;
      const std::uint64_t lo_i = chooser.next_index(rng);
      const std::uint64_t hi_i =
          std::min(lo_i + roles.range_span, cfg.key_space - 1);
      ops += idx.range_scan(KeyCodec<K>::encode(lo_i, cfg.key_space),
                            KeyCodec<K>::encode(hi_i, cfg.key_space),
                            [](const K&, const V&) {});
      lm.end();
    }
    slots[static_cast<std::size_t>(tid)].value = {ops, 0};
    lat_slots[static_cast<std::size_t>(tid)] = {lm.hist, kLatScan};
  };

  std::vector<std::thread> ts;
  int tid = 0;
  for (int i = 0; i < roles.updaters; ++i) ts.emplace_back(updater, tid++);
  for (int i = 0; i < roles.lookups; ++i) ts.emplace_back(lookup, tid++);
  for (int i = 0; i < roles.scanners; ++i) ts.emplace_back(scanner, tid++);
  for (int i = 0; i < roles.rev_scanners; ++i)
    ts.emplace_back(rev_scanner, tid++);
  for (int i = 0; i < roles.rangers; ++i) ts.emplace_back(ranger, tid++);

  const TscClock cal;
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = cal.read();
  start.store(true, std::memory_order_release);  // pairs: harness-start-stop
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.seconds));
  // relaxed: advisory stop flag; thread join orders the counter writes.
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : ts) t.join();
  const std::uint64_t c1 = cal.read();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RowResult r;
  // Every worker has been joined, so the plain slot reads are race-free.
  std::uint64_t total = 0;
  std::uint64_t updates = 0;
  for (const auto& s : slots) {
    total += s.value.total;
    updates += s.value.updates;
  }
  r.total_mops = static_cast<double>(total) / dt / 1e6;
  r.update_mops = static_cast<double>(updates) / dt / 1e6;
  // Ticks→µs calibration over this cell's own wall span, so percentile
  // conversion tracks the actual tick rate of the run, not a boot estimate.
  r.ticks_per_us =
      dt > 0 ? static_cast<double>(c1 - c0) / (dt * 1e6) : 1.0;
  for (const LatSlot& ls : lat_slots) r.lat[ls.cls].merge(ls.hist);
  return r;
}

// ---- metrics JSON sink (--metrics=<file>) --------------------------------
// Cells are appended as pre-serialized JSON objects while the figure runs
// and flushed once at the end (schema jiffy-metrics-v1, read by
// tools/check_scaling.py --metrics=). A process-global sink keeps the
// plumbing out of the templated run_index/run_cell signatures.
struct MetricsSink {
  std::string path;                // empty = metrics disabled
  std::vector<std::string> cells;  // serialized JSON objects
};

inline MetricsSink& metrics_sink() {
  static MetricsSink s;
  return s;
}

inline void append_json_hist(std::string& out, const char* hist_name,
                             const obs::LatHistogram& h, double ticks_per_us) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "\"%s\":{\"count\":%llu,\"p50_us\":%.3f,\"p99_us\":%.3f,"
                "\"p999_us\":%.3f,\"max_us\":%.3f}",
                hist_name, static_cast<unsigned long long>(h.count()),
                hist_pct_us(h, 50.0, ticks_per_us),
                hist_pct_us(h, 99.0, ticks_per_us),
                hist_pct_us(h, 99.9, ticks_per_us),
                ticks_per_us > 0
                    ? static_cast<double>(h.max()) / ticks_per_us
                    : 0.0);
  out += buf;
}

inline void append_metrics_cell(const RunConfig& cfg, const char* index_name,
                                int threads, const RowResult& r,
                                const obs::MetricsSnapshot& delta,
                                const std::string& map_json) {
  MetricsSink& sink = metrics_sink();
  if (sink.path.empty()) return;
  std::string c = "{";
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "\"figure\":\"%s\",\"scenario\":\"%s\",\"batch\":\"%s\","
      "\"dist\":\"%s\",\"kv\":\"%s\",\"index\":\"%s\",\"threads\":%d,"
      "\"seconds\":%.3f,\"reps\":%d,\"mode\":\"%s\",\"rate\":%.1f,"
      "\"total_mops\":%.3f,\"update_mops\":%.3f",
      cfg.figure.c_str(), scenario_name(cfg.scenario),
      cfg.batch.name().c_str(),
      cfg.dist == KeyChooser::Kind::Uniform ? "uniform" : "zipf",
      cfg.kv_shape.c_str(), index_name, threads, cfg.seconds, cfg.reps,
      cfg.rate > 0 ? "open" : "closed", cfg.rate, r.total_mops,
      r.update_mops);
  c += buf;
  c += ",\"counters\":{";
  for (unsigned i = 0; i < obs::kEventCount; ++i) {
    std::snprintf(buf, sizeof buf, "%s\"%s\":%lld", i ? "," : "",
                  obs::kEventNames[i],
                  static_cast<long long>(delta.events[i]));
    c += buf;
  }
  std::snprintf(buf, sizeof buf, ",\"%s\":%lld}", obs::kLimboPeakName,
                static_cast<long long>(delta.limbo_peak));
  c += buf;
  obs::LatHistogram all;
  for (int i = 0; i < kLatClassCount; ++i) all.merge(r.lat[i]);
  c += ",\"latency\":{";
  append_json_hist(c, "all", all, r.ticks_per_us);
  for (int i = 0; i < kLatClassCount; ++i) {
    if (r.lat[i].count() == 0) continue;
    c += ",";
    append_json_hist(c, kLatClassNames[i], r.lat[i], r.ticks_per_us);
  }
  c += "}";
  if (!map_json.empty()) c += ",\"map\":" + map_json;
  c += "}";
  sink.cells.push_back(std::move(c));
}

inline void write_metrics_file() {
  MetricsSink& sink = metrics_sink();
  if (sink.path.empty()) return;
  std::FILE* f = std::fopen(sink.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics: cannot open %s\n", sink.path.c_str());
    return;
  }
  std::fprintf(f, "{\"schema\":\"jiffy-metrics-v1\",\"obs\":%d,\"cells\":[\n",
               static_cast<int>(JIFFY_OBS));
  for (std::size_t i = 0; i < sink.cells.size(); ++i)
    std::fprintf(f, "%s%s\n", sink.cells[i].c_str(),
                 i + 1 < sink.cells.size() ? "," : "");
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

// Sweeps the thread grid. Every thread-count cell gets its OWN index,
// preloaded identically and warmed with the cell's own thread count: cells
// used to share one instance, so cell N measured the map state (and heap
// state) left behind by cells 1..N-1 — the higher thread counts, which run
// last, absorbed the whole churn history of the run, and the "scaling"
// ratio conflated map aging with threads (measured on fig10: a shared-map
// 8-thread cell ran ~25% slower than the identical fresh-map cell). Reps
// within a cell still share the cell's index — every cell ages the same
// way, so best-of-N stays comparable across thread counts.
template <class K, class V, class Adapter>
  requires MapApi<Adapter>
void run_index(const RunConfig& cfg, const char* name) {
  const auto preload = [&cfg](Adapter& idx) {
    // Shuffled preload: ascending insertion would degenerate the BST-route
    // baselines (every split lands on the right edge). Indices are strided
    // across the whole key space (every other lattice point for the default
    // 2x domain) so present and absent keys interleave — otherwise every
    // miss would route to the node past the last key.
    const std::uint64_t stride =
        cfg.entries ? std::max<std::uint64_t>(cfg.key_space / cfg.entries, 1)
                    : 1;
    std::vector<std::uint64_t> order(cfg.entries);
    for (std::uint64_t i = 0; i < cfg.entries; ++i) order[i] = i * stride;
    Rng rng(1);
    for (std::uint64_t i = cfg.entries; i > 1; --i)
      std::swap(order[i - 1], order[rng.next_below(i)]);
    for (const std::uint64_t i : order)
      idx.put(KeyCodec<K>::encode(i, cfg.key_space), ValueCodec<V>::make(i, 0));
  };
  const KeyChooser chooser(cfg.dist, cfg.key_space, cfg.zipf_theta);
  for (int threads : cfg.threads) {
    Adapter idx;
    preload(idx);
    if (cfg.warmup > 0) {
      RunConfig warm = cfg;
      warm.seconds = cfg.warmup;
      run_cell<K, V>(idx, warm, threads, chooser);
    }
    // Counter deltas are taken AFTER warmup so the attributed window covers
    // exactly the measured reps (cells run sequentially; see MetricsSnapshot).
    const obs::MetricsSnapshot snap0 = obs::snapshot();
    RowResult r = run_cell<K, V>(idx, cfg, threads, chooser);
    for (int rep = 1; rep < cfg.reps; ++rep) {
      const RowResult q = run_cell<K, V>(idx, cfg, threads, chooser);
      if (q.total_mops > r.total_mops) r = q;
    }
    const obs::MetricsSnapshot delta = obs::snapshot() - snap0;
    obs::LatHistogram all;
    for (int c = 0; c < kLatClassCount; ++c) all.merge(r.lat[c]);
    std::printf("%s,%s,%s,%s,%s,%s,%d,%.3f,%.3f,%.2f,%.2f,%.2f\n",
                cfg.figure.c_str(), scenario_name(cfg.scenario),
                cfg.batch.name().c_str(),
                cfg.dist == KeyChooser::Kind::Uniform ? "uniform" : "zipf",
                cfg.kv_shape.c_str(), name, threads, r.total_mops,
                r.update_mops, hist_pct_us(all, 50.0, r.ticks_per_us),
                hist_pct_us(all, 99.0, r.ticks_per_us),
                hist_pct_us(all, 99.9, r.ticks_per_us));
    std::fflush(stdout);
    if (!metrics_sink().path.empty()) {
      std::string map_json;
      if constexpr (requires { idx.underlying().debug_stats(); }) {
        const auto ds = idx.underlying().debug_stats();
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "{\"node_count\":%zu,\"entry_count\":%zu,"
            "\"avg_revision_size\":%.2f,\"target_revision_size\":%u,"
            "\"read_fraction_ema\":%.3f,\"tombstone_count\":%zu,"
            "\"dead_shell_estimate\":%zu,\"purged_total\":%llu}",
            ds.node_count, ds.entry_count, ds.avg_revision_size,
            ds.target_revision_size, ds.read_fraction_ema, ds.tombstone_count,
            ds.dead_shell_estimate,
            static_cast<unsigned long long>(ds.purged_total));
        map_json = buf;
      }
      append_metrics_cell(cfg, name, threads, r, delta, map_json);
    }
  }
}

struct CliOptions {
  double seconds = 0.15;
  double warmup = 0.5;
  std::uint64_t entries = 20'000;
  std::vector<int> threads = {1, 2, 4};
  bool paper = false;
  std::string only_index;     // run just one index
  std::string only_scenario;  // a/b/c/d
  bool skip_batches = false;
  int reps = 1;  // best-of-N per cell (see RunConfig::reps)
  double rate = 0;           // open-loop intended ops/sec (0 = closed loop)
  std::string metrics_path;  // --metrics=<file>: JSON counter/latency dump
  std::string trace_path;    // --trace=<file>: binary event-trace dump
};

inline CliOptions parse_cli(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* p) -> const char* {
      return a.c_str() + std::strlen(p);
    };
    if (a == "--paper") {
      o.paper = true;
      o.entries = 10'000'000;
      o.seconds = 5.0;
      o.warmup = 10.0;
      o.threads = {8, 16, 32, 48, 64, 80, 96};
    } else if (a.rfind("--seconds=", 0) == 0) {
      o.seconds = std::stod(val("--seconds="));
    } else if (a.rfind("--warmup=", 0) == 0) {
      o.warmup = std::stod(val("--warmup="));
    } else if (a.rfind("--entries=", 0) == 0) {
      o.entries = std::stoull(val("--entries="));
    } else if (a.rfind("--threads=", 0) == 0) {
      o.threads.clear();
      std::string list = val("--threads=");
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        o.threads.push_back(std::stoi(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (a.rfind("--index=", 0) == 0) {
      o.only_index = val("--index=");
    } else if (a.rfind("--scenario=", 0) == 0) {
      o.only_scenario = val("--scenario=");
    } else if (a == "--no-batches") {
      o.skip_batches = true;
    } else if (a.rfind("--reps=", 0) == 0) {
      o.reps = std::max(1, std::stoi(val("--reps=")));
    } else if (a.rfind("--rate=", 0) == 0) {
      o.rate = std::stod(val("--rate="));
    } else if (a.rfind("--metrics=", 0) == 0) {
      o.metrics_path = val("--metrics=");
    } else if (a.rfind("--trace=", 0) == 0) {
      o.trace_path = val("--trace=");
    } else if (a == "--help") {
      std::printf(
          "flags: --paper | --seconds=S | --entries=N | --threads=a,b,c | "
          "--index=NAME | --scenario=a|b|c|d|e | --no-batches | --reps=N | "
          "--rate=OPS_PER_SEC (open-loop latency mode) | "
          "--metrics=FILE (per-cell counter/latency JSON) | "
          "--trace=FILE (binary event trace, see tools/traceview.py)\n");
      std::exit(0);
    }
  }
  return o;
}

// Runs one complete figure: the simple-update row for every index, then the
// batch rows for the three indices that support atomic batch updates.
template <class K, class V>
void run_figure(const char* figure, const char* kv_shape,
                KeyChooser::Kind dist, const CliOptions& cli,
                bool include_kiwi) {
#if defined(__GLIBC__)
  // Oversubscribed single-core boxes: glibc hands each worker its own malloc
  // arena, but revisions are routinely allocated by one thread and freed
  // (via EBR) by another, so chunks migrate between arenas instead of being
  // reused hot. With one hardware thread the usual reason for multiple
  // arenas — cross-core lock contention — does not exist, so clamp to one
  // and keep the allocation stream cache-resident (measured ~4-5% on the
  // 8-thread update-only cell; see DESIGN.md §14). Left alone on multicore.
  if (std::thread::hardware_concurrency() <= 1) mallopt(M_ARENA_MAX, 1);
#endif
  RunConfig base;
  base.figure = figure;
  base.kv_shape = kv_shape;
  base.dist = dist;
  base.entries = cli.entries;
  base.key_space = cli.entries * 2;
  base.seconds = cli.seconds;
  base.warmup = cli.warmup;
  base.threads = cli.threads;
  base.reps = cli.reps;
  base.rate = cli.rate;
  metrics_sink().path = cli.metrics_path;
  if (!cli.trace_path.empty()) obs::trace_enable(true);

  std::printf(
      "figure,scenario,batch,dist,kv,index,threads,total_mops,update_mops,"
      "p50_us,p99_us,p999_us\n");

  const Scenario scenarios[] = {Scenario::kUpdateOnly, Scenario::kUpdateLookup,
                                Scenario::kMixedShortScan,
                                Scenario::kMixedLongScan,
                                Scenario::kMixedRange};
  auto scenario_enabled = [&](Scenario s) {
    if (cli.only_scenario.empty()) return true;
    return cli.only_scenario.size() == 1 &&
           cli.only_scenario[0] == scenario_name(s)[0];
  };
  auto index_enabled = [&](const char* n) {
    return cli.only_index.empty() || cli.only_index == n;
  };

  for (Scenario s : scenarios) {
    if (!scenario_enabled(s)) continue;
    RunConfig cfg = base;
    cfg.scenario = s;

    // Simple put/remove row: every index (Figure top rows).
    cfg.batch = BatchMode{};
    if (index_enabled("jiffy")) run_index<K, V, JiffyAdapter<K, V>>(cfg, "jiffy");
    if (index_enabled("lf-list"))
      run_index<K, V, LfListAdapter<K, V>>(cfg, "lf-list");
    if (index_enabled("k-ary")) run_index<K, V, KaryAdapter<K, V>>(cfg, "k-ary");
    if (index_enabled("ca-avl"))
      run_index<K, V, CaAvlAdapter<K, V>>(cfg, "ca-avl");
    if (index_enabled("ca-sl")) run_index<K, V, CaSlAdapter<K, V>>(cfg, "ca-sl");
    if (index_enabled("ca-imm"))
      run_index<K, V, CaImmAdapter<K, V>>(cfg, "ca-imm");
    if (index_enabled("lfca")) run_index<K, V, LfcaAdapter<K, V>>(cfg, "lfca");
    if (index_enabled("cslm")) run_index<K, V, CslmAdapter<K, V>>(cfg, "cslm");
    if (include_kiwi && index_enabled("kiwi"))
      run_index<K, V, KiwiAdapter<K, V>>(cfg, "kiwi");

    // Batch rows: Jiffy vs the lock-based CA trees (Figure middle/bottom).
    if (cli.skip_batches) continue;
    for (std::size_t bsz : {std::size_t{10}, std::size_t{100}}) {
      for (bool seq : {true, false}) {
        cfg.batch = BatchMode{bsz, seq};
        if (index_enabled("jiffy"))
          run_index<K, V, JiffyAdapter<K, V>>(cfg, "jiffy");
        if (index_enabled("ca-avl"))
          run_index<K, V, CaAvlAdapter<K, V>>(cfg, "ca-avl");
        if (index_enabled("ca-sl"))
          run_index<K, V, CaSlAdapter<K, V>>(cfg, "ca-sl");
      }
    }
  }

  write_metrics_file();
  if (!cli.trace_path.empty()) {
    const std::uint64_t n = obs::trace_dump(cli.trace_path.c_str());
    std::fprintf(stderr, "trace: wrote %llu events to %s\n",
                 static_cast<unsigned long long>(n), cli.trace_path.c_str());
  }
}

}  // namespace jiffy::bench
