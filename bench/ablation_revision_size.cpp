// Ablation A3 — revision sizing (paper §3.3.6).
//
// Part 1: fixed revision sizes 25..300 vs the autoscaler, under a write-heavy
// and a read-heavy mix. The paper's claim: small revisions win for updates,
// large ones for reads, and the autoscaler tracks the better setting (it
// reported ~35-entry revisions in write-only runs vs ~130 with 75% lookups).
//
// Part 2: adaptation trace — switch the workload from write-heavy to
// read-heavy mid-run and print the average head-revision size over time.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/jiffy.h"
#include "workload/keyvalue.h"
#include "workload/rng.h"

namespace {

using namespace jiffy;
using Map = JiffyMap<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kEntries = 20'000;
constexpr std::uint64_t kSpace = kEntries * 2;

double run_mix(Map& map, double read_fraction, double seconds, int threads) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      Rng rng(23 + t);
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t i = rng.next_below(kSpace);
        const auto k = KeyCodec<std::uint64_t>::encode(i, kSpace);
        if (rng.next_double() < read_fraction)
          map.get(k);
        else if (rng.next_bool(0.5))
          map.put(k, rng.next());
        else
          map.erase(k);
        ++n;
      }
      ops.fetch_add(n, std::memory_order_relaxed);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& th : ts) th.join();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(ops.load()) / dt / 1e6;
}

void preload(Map& m) {
  for (std::uint64_t i = 0; i < kEntries; ++i)
    m.put(KeyCodec<std::uint64_t>::encode(2 * i, kSpace), i);  // interleave
}

}  // namespace

int main() {
  std::printf("bench,config,mix,mops,avg_rev_size\n");
  const int threads = 4;

  for (double rf : {0.0, 0.9}) {
    for (std::uint32_t fixed : {25u, 50u, 100u, 200u, 300u}) {
      JiffyConfig cfg;
      cfg.autoscaler.enabled = false;
      cfg.autoscaler.fixed_size = fixed;
      Map m(cfg);
      preload(m);
      const double mops = run_mix(m, rf, 0.2, threads);
      std::printf("ablation_revsize,fixed%u,reads%.0f%%,%.3f,%.1f\n", fixed,
                  rf * 100, mops, m.debug_stats().avg_revision_size);
    }
    {
      Map m;  // autoscaler on
      preload(m);
      run_mix(m, rf, 0.3, threads);  // warm up the EMAs
      const double mops = run_mix(m, rf, 0.2, threads);
      std::printf("ablation_revsize,autoscale,reads%.0f%%,%.3f,%.1f\n",
                  rf * 100, mops, m.debug_stats().avg_revision_size);
    }
    std::fflush(stdout);
  }

  // Part 2: adaptation over time (write-heavy -> read-heavy).
  {
    Map m;
    preload(m);
    std::printf("bench,phase,t,avg_rev_size\n");
    for (int step = 0; step < 5; ++step) {
      run_mix(m, 0.0, 0.1, threads);
      std::printf("ablation_adapt,writes,%d,%.1f\n", step,
                  m.debug_stats().avg_revision_size);
    }
    for (int step = 0; step < 5; ++step) {
      run_mix(m, 0.95, 0.1, threads);
      std::printf("ablation_adapt,reads,%d,%.1f\n", step,
                  m.debug_stats().avg_revision_size);
    }
  }
  return 0;
}
