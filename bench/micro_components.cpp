// Component microbenchmarks (google-benchmark):
//   * clock sources — the paper quotes ~10 ns for RDTSCP and relies on it
//     being far cheaper than a contended atomic counter;
//   * revision operations — build, clone, hash-index lookup vs binary search
//     (ablation A2's inner loop), across the paper's 25..300 size range;
//   * EBR guard and retire costs.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/jiffy.h"
#include "ebr/ebr.h"
#include "tsc/clock.h"
#include "workload/rng.h"

namespace {

using namespace jiffy;

// ---- clocks -----------------------------------------------------------------

TscClock g_tsc;
SteadyClock g_steady;
AtomicCounterClock g_counter;

void BM_ClockTsc(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(g_tsc.read());
}
BENCHMARK(BM_ClockTsc)->Threads(1)->Threads(2)->Threads(4);

void BM_ClockSteady(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(g_steady.read());
}
BENCHMARK(BM_ClockSteady)->Threads(1)->Threads(2)->Threads(4);

void BM_ClockAtomicCounter(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(g_counter.read());
}
BENCHMARK(BM_ClockAtomicCounter)->Threads(1)->Threads(2)->Threads(4);

// ---- revisions ----------------------------------------------------------------

using Rev = Revision<std::uint64_t, std::uint64_t>;
using Bld = RevisionBuilder<std::uint64_t, std::uint64_t,
                            std::hash<std::uint64_t>>;

Rev* make_revision(std::uint32_t n) {
  Bld b(RevKind::kPlain, n, 1);
  for (std::uint32_t i = 0; i < n; ++i) b.emit(i * 2, i);
  Rev* r = b.finish();
  r->link_refs.store(1, std::memory_order_relaxed);
  return r;
}

void BM_RevisionBuild(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Rev* r = make_revision(n);
    Rev::unref(r, /*immediate=*/true);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RevisionBuild)->Arg(25)->Arg(100)->Arg(300);

void BM_RevisionFindHashIndex(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rev* r = make_revision(n);
  Rng rng(5);
  std::less<std::uint64_t> lt;
  for (auto _ : state) {
    const std::uint64_t k = rng.next_below(n) * 2;
    benchmark::DoNotOptimize(
        r->find(k, fold_hash16(std::hash<std::uint64_t>{}(k)), lt));
  }
  Rev::unref(r, true);
}
BENCHMARK(BM_RevisionFindHashIndex)->Arg(25)->Arg(100)->Arg(300);

void BM_RevisionFindBinary(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rev* r = make_revision(n);
  Rng rng(5);
  std::less<std::uint64_t> lt;
  for (auto _ : state) {
    const std::uint64_t k = rng.next_below(n) * 2;
    benchmark::DoNotOptimize(r->find_binary(k, lt));
  }
  Rev::unref(r, true);
}
BENCHMARK(BM_RevisionFindBinary)->Arg(25)->Arg(100)->Arg(300);

// ---- EBR ------------------------------------------------------------------------

void BM_EbrGuard(benchmark::State& state) {
  for (auto _ : state) {
    ebr::Guard g;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EbrGuard)->Threads(1)->Threads(4);

void BM_EbrRetire(benchmark::State& state) {
  for (auto _ : state) {
    auto* p = new std::uint64_t(1);
    ebr::retire(p);
  }
}
BENCHMARK(BM_EbrRetire);

// ---- end-to-end map ops (single thread reference numbers) -----------------------

void BM_JiffyPut(benchmark::State& state) {
  JiffyMap<std::uint64_t, std::uint64_t> m;
  Rng rng(3);
  for (auto _ : state) m.put(rng.next_below(100'000), 1);
}
BENCHMARK(BM_JiffyPut);

void BM_JiffyGet(benchmark::State& state) {
  JiffyMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t i = 0; i < 100'000; ++i) m.put(i, i);
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(m.get(rng.next_below(100'000)));
}
BENCHMARK(BM_JiffyGet);

void BM_JiffySnapshotAcquire(benchmark::State& state) {
  JiffyMap<std::uint64_t, std::uint64_t> m;
  m.put(1, 1);
  for (auto _ : state) {
    Snapshot s = m.snapshot();
    benchmark::DoNotOptimize(s.version());
  }
}
BENCHMARK(BM_JiffySnapshotAcquire);

void BM_JiffyScan100(benchmark::State& state) {
  JiffyMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t i = 0; i < 100'000; ++i) m.put(i, i);
  Rng rng(3);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    m.scan_n(rng.next_below(100'000), 100,
             [&](const std::uint64_t&, const std::uint64_t& v) { acc += v; });
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_JiffyScan100);

}  // namespace

BENCHMARK_MAIN();
