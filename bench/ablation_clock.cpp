// Ablation A1 — version-number source (paper §3.2 + footnote 3).
//
// The paper reports that the first Jiffy, which used a shared atomic counter
// for version numbers, "did not scale past 4-8 threads", which motivated the
// TSC design. This bench runs the same map under its three clock sources:
//   tsc      RDTSCP (the paper's design)
//   steady   std::chrono::steady_clock (portable fallback, a vDSO call)
//   counter  shared fetch_add counter (the design the paper rejects)
// and prints update-only and mixed throughput per thread count. Expect the
// counter to flatten or regress as threads grow while tsc keeps scaling.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/jiffy.h"
#include "tsc/clock.h"
#include "workload/keyvalue.h"
#include "workload/rng.h"

namespace {

using namespace jiffy;

struct Options {
  double seconds = 0.2;
  std::uint64_t entries = 20'000;
  std::vector<int> threads = {1, 2, 4, 8};
};

template <class Clock>
void run(const char* name, const Options& o, double read_fraction) {
  JiffyMap<std::uint64_t, std::uint64_t, std::less<std::uint64_t>,
           std::hash<std::uint64_t>, Clock>
      map;
  const std::uint64_t space = o.entries * 2;
  for (std::uint64_t i = 0; i < o.entries; ++i)
    map.put(KeyCodec<std::uint64_t>::encode(2 * i, space), i);  // interleave

  for (int threads : o.threads) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ops{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        Rng rng(17 + t);
        std::uint64_t n = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t i = rng.next_below(space);
          const auto k = KeyCodec<std::uint64_t>::encode(i, space);
          if (rng.next_double() < read_fraction)
            map.get(k);
          else if (rng.next_bool(0.5))
            map.put(k, rng.next());
          else
            map.erase(k);
          ++n;
        }
        ops.fetch_add(n, std::memory_order_relaxed);
      });
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::duration<double>(o.seconds));
    stop.store(true);
    for (auto& th : ts) th.join();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("ablation_clock,%s,reads%.0f%%,%d,%.3f\n", name,
                read_fraction * 100, threads,
                static_cast<double>(ops.load()) / dt / 1e6);
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--seconds=", 0) == 0) o.seconds = std::stod(a.substr(10));
    if (a.rfind("--entries=", 0) == 0) o.entries = std::stoull(a.substr(10));
  }
  std::printf("bench,clock,mix,threads,mops\n");
  for (double rf : {0.0, 0.75}) {
    run<jiffy::TscClock>("tsc", o, rf);
    run<jiffy::SteadyClock>("steady", o, rf);
    run<jiffy::AtomicCounterClock>("counter", o, rf);
  }
  return 0;
}
