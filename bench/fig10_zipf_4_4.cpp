// Figure 10: 4 B keys / 4 B values, Zipfian key choice (KiWi included).
#include "bench/harness.h"
#include "common/fixed_bytes.h"

int main(int argc, char** argv) {
  using namespace jiffy;
  const auto cli = bench::parse_cli(argc, argv);
  bench::run_figure<FixedBytes<4>, FixedBytes<4>>(
      "fig10", "4/4B", KeyChooser::Kind::Zipfian, cli, /*include_kiwi=*/true);
  return 0;
}
