// Ablation A2 — the per-revision lightweight hash index (paper §3.3.5).
//
// The paper reports that threads spent significant time in binary searches
// inside revisions, motivating the two-slot hash index; it both improved
// performance and narrowed the gap between revision-size settings. This
// bench measures lookup-heavy and mixed throughput with the index on vs off
// across fixed revision sizes.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/jiffy.h"
#include "workload/keyvalue.h"
#include "workload/rng.h"

namespace {

using namespace jiffy;
using Map = JiffyMap<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kEntries = 40'000;
constexpr std::uint64_t kSpace = kEntries * 2;

double run(Map& map, double read_fraction, int threads, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      Rng rng(31 + t);
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t i = rng.next_below(kSpace);
        const auto k = KeyCodec<std::uint64_t>::encode(i, kSpace);
        if (rng.next_double() < read_fraction)
          map.get(k);
        else
          map.put(k, rng.next());
        ++n;
      }
      ops.fetch_add(n, std::memory_order_relaxed);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& th : ts) th.join();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(ops.load()) / dt / 1e6;
}

}  // namespace

int main() {
  std::printf("bench,rev_size,hash_index,mix,mops\n");
  for (std::uint32_t size : {25u, 100u, 300u}) {
    for (bool hash : {true, false}) {
      JiffyConfig cfg;
      cfg.autoscaler.enabled = false;
      cfg.autoscaler.fixed_size = size;
      cfg.hash_index = hash;
      for (double rf : {1.0, 0.75}) {
        Map m(cfg);
        // Every other lattice index: present and absent keys interleave
        // across the whole domain (KeyCodec is order-preserving).
        for (std::uint64_t i = 0; i < kEntries; ++i)
          m.put(KeyCodec<std::uint64_t>::encode(2 * i, kSpace), i);
        const double mops = run(m, rf, 2, 0.2);
        std::printf("ablation_hash,%u,%s,reads%.0f%%,%.3f\n", size,
                    hash ? "on" : "off", rf * 100, mops);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}
