// Figure 8: 16 B keys / 100 B values, Zipfian key choice (theta = 0.99, the
// YCSB default, as in the paper).
#include "bench/harness.h"
#include "common/fixed_bytes.h"

int main(int argc, char** argv) {
  using namespace jiffy;
  const auto cli = bench::parse_cli(argc, argv);
  bench::run_figure<Key16, Value100>("fig8", "16/100B",
                                     KeyChooser::Kind::Zipfian, cli,
                                     /*include_kiwi=*/false);
  return 0;
}
