// Figure 6 (appendix twin: Figure 9): 4 B keys / 4 B values, uniform keys.
// This is the grid where the paper also includes KiWi (its codebase only
// supports 4 B integer keys); our KiWi proxy runs in every shape but is
// emitted here to match the figure.
#include "bench/harness.h"
#include "common/fixed_bytes.h"

int main(int argc, char** argv) {
  using namespace jiffy;
  const auto cli = bench::parse_cli(argc, argv);
  bench::run_figure<FixedBytes<4>, FixedBytes<4>>(
      "fig6", "4/4B", KeyChooser::Kind::Uniform, cli, /*include_kiwi=*/true);
  return 0;
}
