// Figure 5 (and its appendix twin Figure 7, the update-throughput series):
// throughput scalability with 16 B keys / 100 B values, uniform key choice.
// Emits CSV rows figure,scenario,batch,dist,kv,index,threads,total,update.
#include "bench/harness.h"
#include "common/fixed_bytes.h"

int main(int argc, char** argv) {
  using namespace jiffy;
  const auto cli = bench::parse_cli(argc, argv);
  bench::run_figure<Key16, Value100>("fig5", "16/100B",
                                     KeyChooser::Kind::Uniform, cli,
                                     /*include_kiwi=*/false);
  return 0;
}
