// Batch updates (§3.4): sequential semantics (apply, last-wins dedupe,
// put/remove mix) and the core concurrency guarantee — a concurrent reader
// never observes a partially applied batch. Runs with 1 writer + 3 readers
// so the TSan preset exercises it at 4 threads.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/jiffy.h"
#include "tests/test_util.h"
#include "workload/keyvalue.h"

using namespace jiffy;

namespace {

using Map = JiffyMap<std::uint64_t, std::uint64_t>;
using B = Batch<std::uint64_t, std::uint64_t>;

void test_sequential() {
  JiffyConfig cfg;
  cfg.autoscaler.enabled = false;
  cfg.autoscaler.fixed_size = 8;  // force batches to span many nodes
  Map m(cfg);
  for (std::uint64_t i = 0; i < 1'000; ++i) m.put(splitmix64(i), 1);

  // Mixed put/erase batch through the typed builder.
  B ops;
  for (std::uint64_t i = 0; i < 500; ++i) {
    if (i % 2 == 0)
      ops.put(splitmix64(i), 100 + i);
    else
      ops.erase(splitmix64(i));
  }
  m.apply(std::move(ops));
  for (std::uint64_t i = 0; i < 500; ++i) {
    auto got = m.get(splitmix64(i));
    if (i % 2 == 0) {
      CHECK(got.has_value());
      CHECK_EQ(*got, 100 + i);
    } else {
      CHECK(!got.has_value());
    }
  }
  for (std::uint64_t i = 500; i < 1'000; ++i) CHECK(m.get(splitmix64(i)).has_value());

  // Last-wins per key within one batch, regardless of submission order.
  B dup;
  dup.put(7, 1).erase(7).put(7, 3);
  dup.put(9, 1).put(9, 2);
  dup.erase(11).put(11, 5);
  dup.put(13, 1).erase(13);
  m.apply(std::move(dup));
  CHECK_EQ(*m.get(7), std::uint64_t{3});
  CHECK_EQ(*m.get(9), std::uint64_t{2});
  CHECK_EQ(*m.get(11), std::uint64_t{5});
  CHECK(!m.get(13).has_value());

  // Batch on an empty map / empty batch.
  Map m2;
  m2.apply({});
  B two;
  two.put(1, 1).put(2, 2);
  m2.apply(std::move(two));
  CHECK_EQ(m2.size_slow(), std::size_t{2});
  CHECK_EQ(m2.approx_size(), std::size_t{2});
}

// One writer applies batches that set a *group* of keys to the same nonce;
// readers snapshot the group and require a uniform nonce — any mix means a
// torn batch was observed.
void test_concurrent_atomicity() {
  JiffyConfig cfg;
  cfg.autoscaler.enabled = false;
  cfg.autoscaler.fixed_size = 6;  // groups straddle several fat nodes
  Map m(cfg);

  constexpr std::uint64_t kGroup = 24;       // keys 0..23, scrambled
  constexpr std::uint64_t kSpace = 1 << 14;  // plus background churn keys
  for (std::uint64_t i = 0; i < kGroup; ++i) m.put(splitmix64(i), 0);
  for (std::uint64_t i = 100; i < 2'000; ++i) m.put(splitmix64(i), i);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checks{0};

  std::thread writer([&] {
    Rng rng(1);
    for (std::uint64_t nonce = 1; !stop.load(std::memory_order_relaxed);
         ++nonce) {
      B ops;
      ops.reserve(kGroup + 4);
      for (std::uint64_t i = 0; i < kGroup; ++i)
        ops.put(splitmix64(i), nonce);
      // Unrelated churn mixed into the same batch.
      for (int j = 0; j < 4; ++j) {
        const std::uint64_t k = splitmix64(100 + rng.next_below(kSpace));
        if (rng.next_bool(0.5))
          ops.put(k, nonce);
        else
          ops.erase(k);
      }
      m.apply(std::move(ops));
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(77 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Snapshot get across the whole group: one consistent version.
        Snapshot s = m.snapshot();
        std::uint64_t nonce = ~0ull;
        for (std::uint64_t i = 0; i < kGroup; ++i) {
          auto got = s.get(splitmix64(i));
          CHECK(got.has_value());  // group keys are never removed
          if (nonce == ~0ull) nonce = *got;
          CHECK_EQ(*got, nonce);
        }
        checks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  stop.store(true);
  writer.join();
  for (auto& r : readers) r.join();
  CHECK(checks.load() > 10);
  std::printf("  concurrent atomicity: %llu group checks\n",
              static_cast<unsigned long long>(checks.load()));
}

// Same guarantee through scan_n: a consistent scan over the group region
// must see a uniform nonce.
void test_scan_sees_whole_batch() {
  JiffyConfig cfg;
  cfg.autoscaler.enabled = false;
  cfg.autoscaler.fixed_size = 5;
  Map m(cfg);

  // Contiguous keys so one scan covers exactly the group.
  constexpr std::uint64_t kGroup = 40;
  for (std::uint64_t k = 0; k < kGroup; ++k) m.put(k, 0);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checks{0};

  std::thread writer([&] {
    for (std::uint64_t nonce = 1; !stop.load(std::memory_order_relaxed);
         ++nonce) {
      B ops;
      for (std::uint64_t k = 0; k < kGroup; ++k) ops.put(k, nonce);
      m.apply(std::move(ops));
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t nonce = ~0ull;
        std::size_t seen = 0;
        m.scan_n(0, kGroup, [&](const std::uint64_t&, const std::uint64_t& v) {
          if (nonce == ~0ull) nonce = v;
          CHECK_EQ(v, nonce);
          ++seen;
        });
        CHECK_EQ(seen, std::size_t{kGroup});
        checks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  stop.store(true);
  writer.join();
  for (auto& r : readers) r.join();
  CHECK(checks.load() > 10);
  std::printf("  scan atomicity: %llu scans\n",
              static_cast<unsigned long long>(checks.load()));
}

}  // namespace

int main() {
  test_sequential();
  test_concurrent_atomicity();
  test_scan_sees_whole_batch();
  std::puts("test_batch_atomicity OK");
  return 0;
}
