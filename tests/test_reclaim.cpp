// Snapshot-watermark reclamation: the oldest-active-version ticket registry,
// the cooperative purge pass (collect / sweep / drain / retire), eligibility
// gating by live snapshots, and bounded tombstone growth with auto-purge on.
#include <cstdint>
#include <cstdio>
#include <optional>
#include <vector>

#include "core/jiffy.h"
#include "ebr/ebr.h"
#include "test_util.h"

namespace {

using Map = jiffy::JiffyMap<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kIdle = ~0ull;

jiffy::JiffyConfig manual_cfg() {
  jiffy::JiffyConfig cfg;
  cfg.autoscaler.enabled = false;
  cfg.autoscaler.fixed_size = 8;  // small nodes: erase waves force merges
  cfg.reclaim.auto_purge = false;  // purge only when the test says so
  return cfg;
}

void version_ticket_unit() {
  CHECK_EQ(jiffy::ebr::min_active_version(), kIdle);
  {
    jiffy::ebr::VersionTicket t;
    // Freshly constructed: sentinel 0 blocks the watermark entirely.
    CHECK_EQ(jiffy::ebr::min_active_version(), 0u);
    t.publish(12345);
    CHECK_EQ(jiffy::ebr::min_active_version(), 12345u);
    jiffy::ebr::VersionTicket t2;
    t2.publish(99);
    CHECK_EQ(jiffy::ebr::min_active_version(), 99u);
  }
  CHECK_EQ(jiffy::ebr::min_active_version(), kIdle);
  std::printf("version ticket unit ok\n");
}

// Erase a wave of keys so nodes shrink below the merge threshold, then
// reinsert so the next wave can merge again.
void churn_wave(Map& map, std::uint64_t n, std::uint64_t round) {
  for (std::uint64_t k = 0; k < n; ++k)
    if (k % 8 != 0) map.erase(k);
  for (std::uint64_t k = 0; k < n; ++k)
    if (k % 8 != 0) map.put(k, round * 1000 + k);
}

void manual_purge_progression() {
  Map map(manual_cfg());
  constexpr std::uint64_t kN = 2000;
  for (std::uint64_t k = 0; k < kN; ++k) map.put(k, k);
  for (std::uint64_t round = 1; round <= 3; ++round) churn_wave(map, kN, round);

  auto stats = map.debug_stats();
  std::printf("after churn: tombstones=%zu dead_shells~%zu\n",
              stats.tombstone_count, stats.dead_shell_estimate);
  CHECK(stats.tombstone_count > 0);  // merges left kAbsorbed markers linked

  // No snapshots alive -> watermark is ~0 -> everything is eligible. One
  // purge() call normally completes the whole state machine (its internal
  // quiesce() advances the epoch past the drain barrier); allow a few.
  std::size_t retired = 0;
  for (int i = 0; i < 10 && retired == 0; ++i) retired = map.purge();
  CHECK(retired > 0);

  stats = map.debug_stats();
  std::printf("after purge: tombstones=%zu purged_total=%llu\n",
              stats.tombstone_count,
              static_cast<unsigned long long>(stats.purged_total));
  CHECK_EQ(stats.tombstone_count, 0u);  // single-threaded: all were eligible
  CHECK_EQ(stats.purged_total, static_cast<std::uint64_t>(retired));

  // The map still answers correctly through the rebuilt links.
  for (std::uint64_t k = 0; k < kN; ++k) {
    const std::uint64_t want = k % 8 == 0 ? k : 3000 + k;
    CHECK_EQ(map.get(k).value(), want);
  }
  CHECK_EQ(map.size_slow(), kN);
  std::printf("manual purge progression ok\n");
}

void snapshot_blocks_reclamation() {
  Map map(manual_cfg());
  constexpr std::uint64_t kN = 1024;
  for (std::uint64_t k = 0; k < kN; ++k) map.put(k, k);

  // Clean slate: reclaim the shells from the initial inserts' splits.
  for (int i = 0; i < 4; ++i) map.purge();
  const std::uint64_t purged_before = map.debug_stats().purged_total;

  {
    const auto snap = map.snapshot();  // pins version V via its ticket

    // All merge deaths from this churn stamp dv > V: ineligible while the
    // snapshot lives, no matter how often purge runs.
    for (std::uint64_t round = 1; round <= 2; ++round)
      churn_wave(map, kN, round);
    const std::size_t tombs_live = map.debug_stats().tombstone_count;
    CHECK(tombs_live > 0);
    for (int i = 0; i < 4; ++i) map.purge();

    const auto stats = map.debug_stats();
    CHECK_EQ(stats.purged_total, purged_before);      // nothing retired
    CHECK_EQ(stats.tombstone_count, tombs_live);      // nothing unlinked

    // And the snapshot still reads the pre-churn world exactly.
    for (std::uint64_t k = 0; k < kN; ++k)
      CHECK_EQ(snap.get(k).value(), k);
  }

  // Snapshot gone -> watermark lifts -> the same shells reclaim.
  std::size_t retired = 0;
  for (int i = 0; i < 10 && retired == 0; ++i) retired = map.purge();
  CHECK(retired > 0);
  const auto stats = map.debug_stats();
  CHECK_EQ(stats.tombstone_count, 0u);
  CHECK(stats.purged_total > purged_before);
  for (std::uint64_t k = 0; k < kN; ++k) {
    const std::uint64_t want = k % 8 == 0 ? k : 2000 + k;
    CHECK_EQ(map.get(k).value(), want);
  }
  std::printf("snapshot gating ok\n");
}

void auto_purge_bounds_growth() {
  jiffy::JiffyConfig cfg;
  cfg.autoscaler.enabled = false;
  cfg.autoscaler.fixed_size = 8;
  cfg.reclaim.auto_purge = true;
  cfg.reclaim.threshold = 64;
  Map map(cfg);

  constexpr std::uint64_t kN = 512;
  for (std::uint64_t k = 0; k < kN; ++k) map.put(k, k);
  // ~50k ops of merge-heavy churn; the merge path must keep triggering
  // purge so linked garbage stays near the threshold instead of growing
  // with total churn.
  for (std::uint64_t round = 1; round <= 50; ++round) churn_wave(map, kN, round);

  auto stats = map.debug_stats();
  std::printf("auto-purge: tombstones=%zu purged_total=%llu\n",
              stats.tombstone_count,
              static_cast<unsigned long long>(stats.purged_total));
  CHECK(stats.purged_total > 0);  // the trigger actually fired
  CHECK(stats.tombstone_count < 2 * cfg.reclaim.threshold + 64);

  for (int i = 0; i < 6; ++i) map.purge();
  stats = map.debug_stats();
  CHECK_EQ(stats.tombstone_count, 0u);
  CHECK_EQ(map.size_slow(), kN);
  std::printf("auto-purge bound ok\n");
}

}  // namespace

int main() {
  version_ticket_unit();
  manual_purge_progression();
  snapshot_blocks_reclamation();
  auto_purge_bounds_growth();
  std::printf("test_reclaim OK\n");
  return 0;
}
