// Unit checks for the supporting subsystems: clocks, RNG + distributions,
// key/value codecs, FixedBytes ordering, revision builder + hash index,
// the thread-local block cache, EBR, and the CSLM + LockedMap baselines
// (sequential and a short 4-thread shake for the CSLM).
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "baselines/adapters.h"
#include "common/block_cache.h"
#include "common/fixed_bytes.h"
#include "core/jiffy.h"
#include "ebr/ebr.h"
#include "tests/test_util.h"
#include "tsc/clock.h"
#include "workload/keyvalue.h"
#include "workload/rng.h"

using namespace jiffy;

namespace {

void test_clocks() {
  TscClock tsc;
  SteadyClock steady;
  AtomicCounterClock counter;
  std::uint64_t t0 = tsc.read(), s0 = steady.read(), c0 = counter.read();
  for (int i = 0; i < 1'000; ++i) {
    const std::uint64_t t1 = tsc.read(), s1 = steady.read(),
                        c1 = counter.read();
    CHECK(t1 >= t0);
    CHECK(s1 >= s0);
    CHECK(c1 > c0);  // the counter is strictly increasing
    t0 = t1;
    s0 = s1;
    c0 = c1;
  }
}

void test_rng_and_chooser() {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) CHECK(rng.next_below(97) < 97);
  for (int i = 0; i < 1'000; ++i) {
    const double d = rng.next_double();
    CHECK(d >= 0.0 && d < 1.0);
  }

  const KeyChooser uni(KeyChooser::Kind::Uniform, 1'000);
  const KeyChooser zipf(KeyChooser::Kind::Zipfian, 1'000, 0.99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 20'000; ++i) {
    CHECK(uni.next_index(rng) < 1'000);
    const std::uint64_t z = zipf.next_index(rng);
    CHECK(z < 1'000);
    seen.insert(z);
  }
  // Zipf at theta .99 over 1000 keys is skewed: far fewer distinct values
  // than uniform would give, but well more than a handful.
  CHECK(seen.size() > 50 && seen.size() < 990);
}

void test_codecs() {
  // Injectivity over a small dense domain, every shape.
  std::set<std::uint64_t> s64;
  std::set<FixedBytes<4>> s4;
  std::set<Key16> s16;
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    s64.insert(KeyCodec<std::uint64_t>::encode(i, 10'000));
    s4.insert(KeyCodec<FixedBytes<4>>::encode(i, 10'000));
    s16.insert(KeyCodec<Key16>::encode(i, 10'000));
  }
  CHECK_EQ(s64.size(), std::size_t{5'000});
  CHECK_EQ(s4.size(), std::size_t{5'000});
  CHECK_EQ(s16.size(), std::size_t{5'000});

  // Order preservation: consecutive indices give adjacent, increasing keys
  // (the sequential batch modes depend on this; see workload/keyvalue.h).
  for (std::uint64_t i = 0; i + 1 < 1'000; ++i) {
    CHECK(KeyCodec<std::uint64_t>::encode(i, 10'000) <
          KeyCodec<std::uint64_t>::encode(i + 1, 10'000));
    CHECK(KeyCodec<FixedBytes<4>>::encode(i, 10'000) <
          KeyCodec<FixedBytes<4>>::encode(i + 1, 10'000));
    CHECK(KeyCodec<Key16>::encode(i, 10'000) <
          KeyCodec<Key16>::encode(i + 1, 10'000));
  }
  // Extremes stay in-domain even for space == 2^32 on 4-byte keys.
  CHECK(KeyCodec<FixedBytes<4>>::encode((1ull << 32) - 1, 1ull << 32) ==
        FixedBytes<4>::from_u64(0xFFFFFFFFull));

  // FixedBytes round-trip and byte-wise order == numeric order (big endian).
  for (std::uint64_t v : {0ull, 1ull, 255ull, 256ull, 1ull << 31}) {
    CHECK_EQ(FixedBytes<8>::from_u64(v).to_u64(), v);
  }
  CHECK(FixedBytes<4>::from_u64(255) < FixedBytes<4>::from_u64(256));
  CHECK(ValueCodec<Value100>::make(1, 2) == ValueCodec<Value100>::make(1, 2));
  CHECK(ValueCodec<Value100>::make(1, 2) != ValueCodec<Value100>::make(1, 3));
}

void test_revision_builder() {
  using Rev = Revision<std::uint64_t, std::uint64_t>;
  using Bld = RevisionBuilder<std::uint64_t, std::uint64_t>;
  const std::less<std::uint64_t> lt;

  for (std::uint32_t n : {1u, 7u, 25u, 300u, 1000u}) {
    Bld b(RevKind::kPlain, n, /*version=*/1);
    for (std::uint32_t i = 0; i < n; ++i) b.emit(i * 3, i + 1);
    Rev* r = b.finish();
    CHECK_EQ(r->entries().size(), std::size_t{n});
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto key = std::uint64_t{i} * 3;
      const auto h = fold_hash16(std::hash<std::uint64_t>{}(key));
      const auto* e1 = r->find(key, h, lt);
      const auto* e2 = r->find_binary(key, lt);
      CHECK(e1 && e2);
      CHECK_EQ(e1->second, i + 1);
      CHECK_EQ(e2->second, i + 1);
      // Misses agree too (keys = multiples of 3; probe the gaps).
      const auto miss = key + 1;
      CHECK(!r->find(miss, fold_hash16(std::hash<std::uint64_t>{}(miss)), lt));
      CHECK(!r->find_binary(miss, lt));
    }
    Rev::unref(r, /*immediate=*/true);
  }

  // hash_index=false builds no table and still finds everything.
  Bld b(RevKind::kPlain, 10, 1, /*hash_index=*/false);
  for (std::uint32_t i = 0; i < 10; ++i) b.emit(i, i);
  Rev* r = b.finish();
  CHECK(r->hmask == 0);
  CHECK(r->find(5, fold_hash16(std::hash<std::uint64_t>{}(5)), lt));
  Rev::unref(r, true);
}

void test_block_cache() {
  using C = ThreadBlockCache;
  // Oversized blocks always bypass the cache: size passes through unchanged.
  const std::size_t big = C::kMaxBlockBytes + 1;
  CHECK_EQ(C::usable_size(big), big);
  void* d = C::allocate(big);
  CHECK(d != nullptr);
  C::deallocate(d, big);

  const std::size_t u = C::usable_size(100);
  if (u == 100) {
    // Cache compiled out (sanitizer build) or disabled via JIFFY_NO_BLOCK_CACHE:
    // allocate/deallocate must still pair up as the plain allocator.
    void* p = C::allocate(u);
    CHECK(p != nullptr);
    C::deallocate(p, u);
    return;
  }

  // Enabled: sizes round up to the 256-byte class grid...
  CHECK_EQ(u, std::size_t{256});
  CHECK_EQ(C::usable_size(300), std::size_t{512});
  // ...and the most recently freed block of a class is served first (LIFO),
  // which is the whole point: the warmest lines go to the next build.
  void* a = C::allocate(u);
  C::deallocate(a, u);
  void* b = C::allocate(u);
  CHECK_EQ(b, a);
  // A different class cannot alias a block still parked in the cache.
  C::deallocate(b, u);
  void* c = C::allocate(C::usable_size(300));
  CHECK(c != b);
  C::deallocate(c, C::usable_size(300));
}

void test_ebr() {
  static std::atomic<int> live{0};
  struct Obj {
    Obj() { live.fetch_add(1); }
    ~Obj() { live.fetch_sub(1); }
  };
  for (int i = 0; i < 10'000; ++i) {
    ebr::Guard g;
    ebr::retire(new Obj);
  }
  ebr::quiesce();
  ebr::quiesce();
  CHECK(live.load() < 10'000);  // the collector is actually collecting

  // Nested guards and guards on fresh threads.
  std::thread([] {
    ebr::Guard a;
    ebr::Guard b;
    ebr::retire(new Obj);
  }).join();
}

template <class M>
void shake_map_interface(M& m) {
  std::map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(5);
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t k = rng.next_below(600);
    if (rng.next_bool(0.6)) {
      const std::uint64_t v = rng.next();
      m.put(k, v);
      oracle[k] = v;
    } else {
      m.erase(k);
      oracle.erase(k);
    }
  }
  for (std::uint64_t k = 0; k < 600; ++k) {
    auto got = m.get(k);
    auto it = oracle.find(k);
    CHECK_EQ(got.has_value(), it != oracle.end());
    if (got) CHECK_EQ(*got, it->second);
  }
  std::vector<std::uint64_t> keys;
  m.scan_n(0, 1'000,
           [&](const std::uint64_t& k, const std::uint64_t&) { keys.push_back(k); });
  CHECK_EQ(keys.size(), oracle.size());
  CHECK(std::is_sorted(keys.begin(), keys.end()));
}

void test_cslm() {
  {
    CslmAdapter<std::uint64_t, std::uint64_t> m;
    shake_map_interface(m);
  }
  // Short 4-thread churn; correctness here = no crash/race (TSan preset)
  // plus spot-checked presence on a reserved prefix no one erases.
  baselines::CslmMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 0; k < 64; ++k) m.put(k, k);
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      Rng rng(31 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = 64 + rng.next_below(2'000);
        switch (rng.next_below(4)) {
          case 0:
            m.put(k, rng.next());
            break;
          case 1:
            m.erase(k);
            break;
          case 2:
            m.get(k);
            break;
          default:
            m.scan_n(k, 32, [](const std::uint64_t&, const std::uint64_t&) {});
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  for (auto& t : ts) t.join();
  for (std::uint64_t k = 0; k < 64; ++k) CHECK_EQ(*m.get(k), k);
}

void test_locked_map_stub() {
  KaryAdapter<std::uint64_t, std::uint64_t> m;
  shake_map_interface(m);
  CHECK(baselines::adapter_info("k-ary") != nullptr);
  CHECK(baselines::adapter_info("k-ary")->kind ==
        baselines::AdapterKind::kStub);
  CHECK(baselines::adapter_info("jiffy")->kind ==
        baselines::AdapterKind::kNative);
  CHECK(baselines::adapter_info("lf-list")->kind ==
        baselines::AdapterKind::kNative);
  CHECK(baselines::adapter_info("snaptree") == nullptr);  // replaced
  CHECK(baselines::adapter_info("nope") == nullptr);
}

}  // namespace

int main() {
  test_clocks();
  test_rng_and_chooser();
  test_codecs();
  test_revision_builder();
  test_block_cache();
  test_ebr();
  test_cslm();
  test_locked_map_stub();
  std::puts("test_components OK");
  return 0;
}
