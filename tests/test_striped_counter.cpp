// StripedCounter / CachePadded: the layout contract (one cacheline per slot,
// no false sharing between padded members) and the counting contract (no
// lost updates under concurrent add from 8 threads; drain moves every delta
// into exactly one window). Runs under TSan in the sanitizer presets — the
// relaxed slot traffic must be free of data races, not just "close enough".
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/striped_counter.h"
#include "test_util.h"

namespace {

using jiffy::CachePadded;
using jiffy::kCacheLineBytes;
using jiffy::StripedCounter;

// ---- layout: the static contracts the padding types promise -----------------

static_assert(alignof(CachePadded<std::atomic<std::uint64_t>>) ==
              kCacheLineBytes);
static_assert(sizeof(CachePadded<std::atomic<std::uint64_t>>) ==
              kCacheLineBytes);
static_assert(alignof(CachePadded<std::atomic<bool>>) == kCacheLineBytes);
static_assert(sizeof(CachePadded<std::atomic<bool>>) == kCacheLineBytes);
// sizeof is a multiple of alignof, so array elements / adjacent members of
// CachePadded types can never straddle into each other's cachelines — the
// property the harness OpSlot array and the JiffyMap hot members rely on.
static_assert(sizeof(CachePadded<std::uint64_t[4]>) % kCacheLineBytes == 0);

struct TwoPadded {
  CachePadded<std::atomic<std::uint64_t>> a;
  CachePadded<std::atomic<std::uint64_t>> b;
};
static_assert(offsetof(TwoPadded, b) - offsetof(TwoPadded, a) >=
              kCacheLineBytes);

void layout_unit() {
  // Dynamic double-check of the same property (offsetof on non-standard-
  // layout types is conditionally-supported; this is not).
  TwoPadded two;
  const auto pa = reinterpret_cast<std::uintptr_t>(&two.a.value);
  const auto pb = reinterpret_cast<std::uintptr_t>(&two.b.value);
  CHECK((pa / kCacheLineBytes) != (pb / kCacheLineBytes));
  std::printf("layout unit ok\n");
}

// ---- counting: exactness under concurrency ----------------------------------

void exactness_under_threads() {
  StripedCounter<64> c;
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 200'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      // Mixed deltas that net to kPerThread per thread: exercises add,
      // increment and decrement on the same slots.
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        c.add(2);
        c.decrement();
      }
    });
  }
  for (auto& t : ts) t.join();
  CHECK_EQ(c.read(), kThreads * kPerThread);
  std::printf("exactness under %d threads ok\n", kThreads);
}

void concurrent_read_is_bounded() {
  // While writers run, read() may lag but can never exceed the true total
  // (all deltas are positive here) nor go below zero.
  StripedCounter<64> c;
  constexpr int kWriters = 4;
  constexpr std::int64_t kPerThread = 100'000;
  std::atomic<bool> done{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kWriters; ++t) {
    ts.emplace_back([&c] {
      for (std::int64_t i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  std::thread reader([&] {
    std::int64_t prev = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::int64_t n = c.read();
      CHECK(n >= 0);
      CHECK(n <= kWriters * kPerThread);
      // Monotone here: increments only, and slots are swept in a fixed
      // order, so a later full sweep can only see more.
      CHECK(n >= prev);
      prev = n;
    }
  });
  for (auto& t : ts) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  CHECK_EQ(c.read(), kWriters * kPerThread);
  std::printf("concurrent read bounds ok\n");
}

void drain_windows_partition_the_total() {
  // Writers race a drainer; every delta must land in exactly one window
  // (drain) or remain in the counter at the end — never lost, never twice.
  StripedCounter<64> c;
  constexpr int kWriters = 4;
  constexpr std::int64_t kPerThread = 100'000;
  std::atomic<bool> done{false};
  std::int64_t harvested = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < kWriters; ++t) {
    ts.emplace_back([&c] {
      for (std::int64_t i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) harvested += c.drain();
  });
  for (auto& t : ts) t.join();
  done.store(true, std::memory_order_release);
  drainer.join();
  harvested += c.drain();
  CHECK_EQ(harvested, kWriters * kPerThread);
  CHECK_EQ(c.read(), 0);
  std::printf("drain window partition ok\n");
}

void shard_id_is_stable_and_dense() {
  // A thread sees one id for its lifetime; distinct early threads get
  // distinct ids (the dense ticket is what keeps collisions rare).
  const unsigned here1 = jiffy::detail::thread_shard_id();
  const unsigned here2 = jiffy::detail::thread_shard_id();
  CHECK_EQ(here1, here2);
  unsigned other = here1;
  std::thread t([&other] { other = jiffy::detail::thread_shard_id(); });
  t.join();
  CHECK(other != here1);
  std::printf("shard id unit ok\n");
}

}  // namespace

int main() {
  layout_unit();
  shard_id_is_stable_and_dense();
  exactness_under_threads();
  concurrent_read_is_bounded();
  drain_windows_partition_the_total();
  std::printf("test_striped_counter ok\n");
  return 0;
}
