// Fomitchev-Ruppert lock-free list baseline: sequential differential test
// against std::map, concurrent disjoint-writer determinism, and a mixed
// churn run validated by the expected-state oracle (the list is the second
// truly concurrent reference the differential suites lean on).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "baselines/lf_list.h"
#include "oracle.h"
#include "test_util.h"
#include "tsc/clock.h"
#include "workload/rng.h"

namespace {

using List = jiffy::baselines::LfList<std::uint64_t, std::uint64_t>;

void sequential_differential() {
  List list;
  std::map<std::uint64_t, std::uint64_t> model;
  jiffy::Rng rng(42);
  constexpr std::uint64_t kSpace = 512;

  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next() % kSpace;
    switch (rng.next() % 4) {
      case 0: {
        const std::uint64_t v = rng.next();
        const bool inserted = list.put(k, v);
        CHECK_EQ(inserted, model.find(k) == model.end());
        model[k] = v;
        break;
      }
      case 1: {
        CHECK_EQ(list.erase(k), model.erase(k) > 0);
        break;
      }
      case 2: {
        const auto got = list.get(k);
        const auto it = model.find(k);
        CHECK_EQ(got.has_value(), it != model.end());
        if (got) CHECK_EQ(*got, it->second);
        break;
      }
      default: {
        const std::uint64_t hi = k + rng.next() % 64;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
        list.range_scan(k, hi, [&](const std::uint64_t& rk,
                                   const std::uint64_t& rv) {
          got.emplace_back(rk, rv);
        });
        std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
        for (auto it = model.lower_bound(k);
             it != model.end() && it->first < hi; ++it)
          want.emplace_back(it->first, it->second);
        CHECK(got == want);
      }
    }
  }
  CHECK_EQ(list.approx_size(), model.size());

  // Forward and reverse bounded scans agree with the model end to end.
  std::vector<std::uint64_t> fwd, rev;
  list.scan_n(0, model.size() + 8,
              [&](const std::uint64_t& k, const std::uint64_t&) {
                fwd.push_back(k);
              });
  list.rscan_n(~0ull, model.size() + 8,
               [&](const std::uint64_t& k, const std::uint64_t&) {
                 rev.push_back(k);
               });
  CHECK_EQ(fwd.size(), model.size());
  CHECK_EQ(rev.size(), model.size());
  auto mit = model.begin();
  for (std::size_t i = 0; i < fwd.size(); ++i, ++mit) {
    CHECK_EQ(fwd[i], mit->first);
    CHECK_EQ(rev[rev.size() - 1 - i], mit->first);
  }
  std::printf("sequential differential ok (%zu final entries)\n",
              model.size());
}

// Disjoint key ranges: every thread's writes must land exactly, and the
// helped deletion protocol must never lose a neighbour's key.
void concurrent_disjoint() {
  List list;
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPer = 2000;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&list, t] {
      const std::uint64_t base = t * kPer;
      for (std::uint64_t k = 0; k < kPer; ++k) list.put(base + k, t);
      for (std::uint64_t k = 0; k < kPer; k += 2) list.erase(base + k);
      for (std::uint64_t k = 0; k < kPer; k += 4) list.put(base + k, t + 10);
    });
  }
  for (auto& t : ts) t.join();
  for (unsigned t = 0; t < kThreads; ++t) {
    const std::uint64_t base = t * kPer;
    for (std::uint64_t k = 0; k < kPer; ++k) {
      const auto got = list.get(base + k);
      if (k % 4 == 0) {
        CHECK_EQ(got.value(), t + 10ull);
      } else if (k % 2 == 0) {
        CHECK(!got.has_value());
      } else {
        CHECK_EQ(got.value(), static_cast<std::uint64_t>(t));
      }
    }
  }
  CHECK_EQ(list.approx_size(), kThreads * (kPer / 2 + kPer / 4));
  std::printf("concurrent disjoint ok\n");
}

// Shared-key churn validated online by the expected-state oracle: point
// gets checked against the TSC-bracketed per-key history, then a quiescent
// full sweep.
void concurrent_oracle() {
  List list;
  jiffy::testing::Oracle oracle(1024);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failed{0};

  std::vector<std::thread> ts;
  for (unsigned t = 0; t < 3; ++t) {
    ts.emplace_back([&, t] {
      jiffy::Rng rng(777 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next() % 1024;
        if (rng.next() % 3 != 0) {
          const std::uint64_t v = rng.next();
          oracle.mutate(k, true, v, [&] { list.put(k, v); });
        } else {
          oracle.mutate(k, false, 0, [&] { list.erase(k); });
        }
      }
    });
  }
  for (unsigned t = 0; t < 2; ++t) {
    ts.emplace_back([&, t] {
      jiffy::Rng rng(999 + t);
      jiffy::TscClock clock;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next() % 1024;
        const std::uint64_t r0 = clock.read();
        const auto got = list.get(k);
        const std::uint64_t r1 = clock.read();
        if (oracle.check_window(k, r0, r1, got) ==
            jiffy::testing::Verdict::kFailed)
          failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(1));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : ts) t.join();
  CHECK_EQ(failed.load(), 0u);
  CHECK_EQ(oracle.check_all_quiescent(list, jiffy::TscClock{}.read()), 0u);
  std::printf("concurrent oracle ok\n");
}

}  // namespace

int main() {
  sequential_differential();
  concurrent_disjoint();
  concurrent_oracle();
  std::printf("test_lflist OK\n");
  return 0;
}
