// Single-threaded JiffyMap semantics: put/get/erase, overwrite, ordering,
// scan bounds, splits (tiny fixed revision sizes), hash index on/off, both
// kv shapes, and snapshot reads at a quiescent point.
#include <cstdint>
#include <map>
#include <vector>

#include "common/fixed_bytes.h"
#include "core/jiffy.h"
#include "tests/test_util.h"
#include "workload/keyvalue.h"

using namespace jiffy;

namespace {

JiffyConfig cfg_fixed(std::uint32_t size, bool hash) {
  JiffyConfig c;
  c.autoscaler.enabled = false;
  c.autoscaler.fixed_size = size;
  c.hash_index = hash;
  return c;
}

void test_crud(const JiffyConfig& cfg) {
  JiffyMap<std::uint64_t, std::uint64_t> m(cfg);
  std::map<std::uint64_t, std::uint64_t> oracle;

  // Mixed scrambled inserts, overwrites and erases against an oracle.
  Rng rng(42);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t k = splitmix64(rng.next_below(4'000));
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const std::uint64_t v = rng.next();
        const bool inserted = m.put(k, v);
        CHECK_EQ(inserted, oracle.find(k) == oracle.end());
        oracle[k] = v;
        break;
      }
      case 2: {
        const bool erased = m.erase(k);
        CHECK_EQ(erased, oracle.erase(k) > 0);
        break;
      }
      default: {
        auto got = m.get(k);
        auto it = oracle.find(k);
        CHECK_EQ(got.has_value(), it != oracle.end());
        if (got) CHECK_EQ(*got, it->second);
        break;
      }
    }
  }
  CHECK_EQ(m.size_slow(), oracle.size());

  // Full ordered scan matches the oracle exactly.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  m.scan_n(0, oracle.size() + 10,
           [&](const std::uint64_t& k, const std::uint64_t& v) {
             out.emplace_back(k, v);
           });
  CHECK_EQ(out.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : out) {
    CHECK_EQ(k, it->first);
    CHECK_EQ(v, it->second);
    ++it;
  }

  // Bounded scan from a mid key.
  if (oracle.size() > 100) {
    auto mid = oracle.begin();
    std::advance(mid, oracle.size() / 2);
    std::size_t n = 0;
    std::uint64_t prev = 0;
    const std::size_t got =
        m.scan_n(mid->first, 50, [&](const std::uint64_t& k, const std::uint64_t&) {
          CHECK(n == 0 || k > prev);
          CHECK(k >= mid->first);
          prev = k;
          ++n;
        });
    CHECK_EQ(got, std::size_t{50});
  }

  // Quiescent snapshot agrees with the map.
  Snapshot s = m.snapshot();
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t k = splitmix64(static_cast<std::uint64_t>(i));
    auto a = s.get(k);
    auto b = m.get(k);
    CHECK_EQ(a.has_value(), b.has_value());
    if (a) CHECK_EQ(*a, *b);
  }
}

void test_fixed_bytes_shape() {
  JiffyMap<Key16, Value100> m(cfg_fixed(32, true));
  const std::uint64_t space = 4'000;
  for (std::uint64_t i = 0; i < 2'000; ++i)
    m.put(KeyCodec<Key16>::encode(i, space), ValueCodec<Value100>::make(i, 7));
  CHECK_EQ(m.size_slow(), std::size_t{2'000});
  for (std::uint64_t i = 0; i < 2'000; ++i) {
    auto got = m.get(KeyCodec<Key16>::encode(i, space));
    CHECK(got.has_value());
    CHECK(*got == ValueCodec<Value100>::make(i, 7));
  }
  CHECK(!m.get(KeyCodec<Key16>::encode(3'999, space)).has_value());

  // Ordered scan sees strictly increasing byte-wise keys.
  Key16 prev{};
  bool first = true;
  std::size_t n = m.scan_n(Key16{}, 5'000, [&](const Key16& k, const Value100&) {
    CHECK(first || prev < k);
    prev = k;
    first = false;
  });
  CHECK_EQ(n, std::size_t{2'000});
}

void test_autoscaler_modes() {
  // Autoscaler on: target stays inside [min, max].
  JiffyConfig c;
  c.autoscaler.min_size = 16;
  c.autoscaler.max_size = 64;
  c.autoscaler.interval_s = 0.001;
  JiffyMap<std::uint64_t, std::uint64_t> m(c);
  for (std::uint64_t i = 0; i < 10'000; ++i) m.put(splitmix64(i), i);
  for (std::uint64_t i = 0; i < 10'000; ++i) m.get(splitmix64(i));
  const auto st = m.debug_stats();
  CHECK(st.target_revision_size >= 16 && st.target_revision_size <= 64);
  CHECK(st.entry_count == 10'000);
  CHECK(st.avg_revision_size > 1.0);
}

}  // namespace

int main() {
  test_crud(cfg_fixed(4, true));     // tiny revisions: exercise splits hard
  test_crud(cfg_fixed(25, false));   // binary-search-only path
  test_crud(cfg_fixed(300, true));   // big revisions: hash path
  test_crud(JiffyConfig{});          // autoscaler defaults
  test_fixed_bytes_shape();
  test_autoscaler_modes();
  std::puts("test_map_basic OK");
  return 0;
}
