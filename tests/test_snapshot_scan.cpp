// Snapshot / consistent-scan guarantees under concurrent plain updates:
//   * a Snapshot is frozen: re-reading it gives identical results while
//     writers churn (including node splits under tiny revision sizes);
//   * scan_n output is sorted, duplicate-free and within bounds at all times;
//   * monotonic write visibility: once a reader's scan observes a writer's
//     k-th marker, a later scan by the same reader observes >= k.
// 1 + 3 threads so the TSan preset drives 4-way races.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/jiffy.h"
#include "tests/test_util.h"
#include "workload/keyvalue.h"

using namespace jiffy;

namespace {

using Map = JiffyMap<std::uint64_t, std::uint64_t>;

void test_frozen_snapshot() {
  JiffyConfig cfg;
  cfg.autoscaler.enabled = false;
  cfg.autoscaler.fixed_size = 8;  // lots of splits while churning
  Map m(cfg);
  constexpr std::uint64_t kSpace = 4'000;
  for (std::uint64_t i = 0; i < kSpace / 2; ++i) m.put(splitmix64(i % kSpace), i);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t k = splitmix64(rng.next_below(kSpace));
      if (rng.next_bool(0.6))
        m.put(k, rng.next());
      else
        m.erase(k);
    }
  });

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> rounds{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(11 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        Snapshot s = m.snapshot();
        const std::uint64_t from = splitmix64(rng.next_below(kSpace));
        std::vector<std::pair<std::uint64_t, std::uint64_t>> first, second;
        s.scan_n(from, 64, [&](const std::uint64_t& k, const std::uint64_t& v) {
          first.emplace_back(k, v);
        });
        s.scan_n(from, 64, [&](const std::uint64_t& k, const std::uint64_t& v) {
          second.emplace_back(k, v);
        });
        CHECK(first == second);  // the snapshot did not move
        for (std::size_t i = 0; i < first.size(); ++i) {
          CHECK(first[i].first >= from);
          if (i) CHECK(first[i - 1].first < first[i].first);
          auto got = s.get(first[i].first);  // point reads agree with the scan
          CHECK(got.has_value());
          CHECK_EQ(*got, first[i].second);
        }
        rounds.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true);
  writer.join();
  for (auto& r : readers) r.join();
  CHECK(rounds.load() > 10);
  std::printf("  frozen snapshots: %llu rounds\n",
              static_cast<unsigned long long>(rounds.load()));
}

// A writer advances a contiguous prefix marker: it sets keys 0..N-1 to N in
// increasing N, one put per key, so at any instant the map holds values
// forming a "staircase". A consistent scan must never see value i at key a
// and value j < i at key b < a... specifically: within one scan, values are
// non-increasing as keys grow (newer prefixes overwrite from key 0 up).
void test_scan_consistency_prefix() {
  JiffyConfig cfg;
  cfg.autoscaler.enabled = false;
  cfg.autoscaler.fixed_size = 6;
  Map m(cfg);
  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t k = 0; k < kKeys; ++k) m.put(k, 0);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::uint64_t round = 1; !stop.load(std::memory_order_relaxed);
         ++round)
      for (std::uint64_t k = 0; k < kKeys; ++k) m.put(k, round);
  });

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> scans{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_seen_round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t prev = ~0ull;
        std::uint64_t first = 0;
        std::size_t n = 0;
        m.scan_n(0, kKeys, [&](const std::uint64_t&, const std::uint64_t& v) {
          if (n == 0) first = v;
          // Writer sweeps key 0 -> kKeys-1, so along the scan values can
          // only step down (from round R to R-1), never up.
          CHECK(v <= prev);
          CHECK(v + 1 >= first || first == 0);
          prev = v;
          ++n;
        });
        CHECK_EQ(n, std::size_t{kKeys});
        // Reader-side monotonicity: consecutive consistent scans by one
        // thread never travel back in time.
        CHECK(first >= last_seen_round);
        last_seen_round = first;
        scans.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true);
  writer.join();
  for (auto& r : readers) r.join();
  CHECK(scans.load() > 10);
  std::printf("  prefix scans: %llu\n",
              static_cast<unsigned long long>(scans.load()));
}

}  // namespace

int main() {
  test_frozen_snapshot();
  test_scan_consistency_prefix();
  std::puts("test_snapshot_scan OK");
  return 0;
}
