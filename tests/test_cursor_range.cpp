// Cursor / range API v2 guarantees:
//   * randomized differential test of Snapshot cursors (seek, seek_for_prev,
//     first/last, next/prev) and range(lo, hi) views against a std::map
//     oracle, single-threaded, across revision-size / hash-index configs;
//   * under concurrent writers: the reverse cursor returns exactly the
//     reversed sequence of the forward cursor for the same version, and a
//     range view equals the forward sequence clipped to [lo, hi);
//   * snapshot stability while iterating backward: a Snapshot re-walked
//     backward gives identical results while the map mutates underneath;
//   * the MapApi surface (contains / approx_size / rscan_n / range_scan) on
//     the Jiffy, CSLM and stub adapters against the same oracle.
// 1 writer + 3 readers where concurrent, so the TSan preset drives 4-way
// races.
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "baselines/adapters.h"
#include "core/jiffy.h"
#include "tests/test_util.h"
#include "workload/keyvalue.h"

using namespace jiffy;

namespace {

using Map = JiffyMap<std::uint64_t, std::uint64_t>;
using KV = std::pair<std::uint64_t, std::uint64_t>;

JiffyConfig cfg_fixed(std::uint32_t size, bool hash) {
  JiffyConfig c;
  c.autoscaler.enabled = false;
  c.autoscaler.fixed_size = size;
  c.hash_index = hash;
  return c;
}

std::vector<KV> collect_forward(const Map::SnapshotT& s) {
  std::vector<KV> out;
  for (auto c = s.first(); c.valid(); c.next())
    out.emplace_back(c.key(), c.value());
  return out;
}

std::vector<KV> collect_reverse(const Map::SnapshotT& s) {
  std::vector<KV> out;
  for (auto c = s.last(); c.valid(); c.prev())
    out.emplace_back(c.key(), c.value());
  return out;
}

// Single-threaded randomized differential vs std::map.
void test_cursor_oracle(const JiffyConfig& cfg) {
  Map m(cfg);
  std::map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(2024);
  constexpr std::uint64_t kSpace = 2'000;

  for (int round = 0; round < 40; ++round) {
    // A burst of mixed mutations (including batches) on both maps.
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t k = splitmix64(rng.next_below(kSpace));
      switch (rng.next_below(5)) {
        case 0:
        case 1: {
          const std::uint64_t v = rng.next();
          m.put(k, v);
          oracle[k] = v;
          break;
        }
        case 2:
          m.erase(k);
          oracle.erase(k);
          break;
        default: {
          Batch<std::uint64_t, std::uint64_t> b;
          for (int j = 0; j < 6; ++j) {
            const std::uint64_t bk = splitmix64(rng.next_below(kSpace));
            if (rng.next_bool(0.6)) {
              const std::uint64_t v = rng.next();
              b.put(bk, v);
              oracle[bk] = v;
            } else {
              b.erase(bk);
              oracle.erase(bk);
            }
          }
          m.apply(std::move(b));
          break;
        }
      }
    }

    Snapshot s = m.snapshot();

    // Full forward == oracle, full reverse == reversed oracle.
    const std::vector<KV> fwd = collect_forward(s);
    CHECK_EQ(fwd.size(), oracle.size());
    {
      auto it = oracle.begin();
      for (const auto& [k, v] : fwd) {
        CHECK_EQ(k, it->first);
        CHECK_EQ(v, it->second);
        ++it;
      }
    }
    std::vector<KV> rev = collect_reverse(s);
    std::reverse(rev.begin(), rev.end());
    CHECK(rev == fwd);

    // Single-threaded: the maintained counter is exact.
    CHECK_EQ(m.approx_size(), oracle.size());

    // Random seek / seek_for_prev probes vs lower_bound / upper_bound.
    for (int probe = 0; probe < 50; ++probe) {
      const std::uint64_t k = splitmix64(rng.next_below(kSpace)) + rng.next_below(3) - 1;
      auto c = s.seek(k);
      auto lb = oracle.lower_bound(k);
      CHECK_EQ(c.valid(), lb != oracle.end());
      if (c.valid()) {
        CHECK_EQ(c.key(), lb->first);
        CHECK_EQ(c.value(), lb->second);
      }
      auto p = s.seek_for_prev(k);
      auto ub = oracle.upper_bound(k);
      CHECK_EQ(p.valid(), ub != oracle.begin());
      if (p.valid()) {
        --ub;
        CHECK_EQ(p.key(), ub->first);
        CHECK_EQ(p.value(), ub->second);
      }
      // Direction switch: next() after seek_for_prev lands on seek(k+1)'s
      // position; prev() after seek lands on the strict predecessor.
      if (p.valid()) {
        auto q = p;
        q.next();
        auto nxt = oracle.upper_bound(p.key());
        CHECK_EQ(q.valid(), nxt != oracle.end());
        if (q.valid()) CHECK_EQ(q.key(), nxt->first);
      }
    }

    // Stepping an invalid cursor is a harmless no-op, not a crash.
    {
      auto c = s.cursor();  // unpositioned
      CHECK(!c.valid());
      c.next();
      c.prev();
      CHECK(!c.valid());
      auto e = s.seek(~0ull);  // usually past the last key
      if (e.valid()) e.next();
      e.next();
      CHECK(!e.valid() || e.key() <= ~0ull);
    }

    // Range view over a *temporary* snapshot: the view's own EBR guard must
    // keep the version's revisions alive (C++20 destroys the temporary
    // before begin() runs).
    {
      std::size_t n = 0;
      std::uint64_t prev_k = 0;
      for (auto [k, v] : m.snapshot().range(0, ~0ull)) {
        CHECK(n == 0 || k > prev_k);
        prev_k = k;
        (void)v;
        ++n;
      }
      CHECK_EQ(n, oracle.size());  // no oracle key is ~0ull with these seeds
    }

    // Random half-open range views vs the oracle slice.
    for (int probe = 0; probe < 20; ++probe) {
      const std::uint64_t lo = splitmix64(rng.next_below(kSpace));
      const std::uint64_t hi = lo + (std::uint64_t{1} << (20 + rng.next_below(40)));
      std::vector<KV> got;
      for (auto [k, v] : s.range(lo, hi)) got.emplace_back(k, v);
      std::vector<KV> want;
      for (auto it = oracle.lower_bound(lo);
           it != oracle.end() && it->first < hi; ++it)
        want.emplace_back(it->first, it->second);
      CHECK(got == want);
      // range_scan agrees with the view.
      std::vector<KV> scan;
      m.range_scan(lo, hi, [&](const std::uint64_t& k, const std::uint64_t& v) {
        scan.emplace_back(k, v);
      });
      CHECK(scan == want);
      // rscan_n from hi-1 is the tail of `want`, reversed.
      std::vector<KV> rsc;
      s.rscan_n(hi - 1, want.size() + 5,
                [&](const std::uint64_t& k, const std::uint64_t& v) {
                  rsc.emplace_back(k, v);
                });
      std::size_t checked = 0;
      for (auto it = want.rbegin(); it != want.rend() && checked < rsc.size();
           ++it, ++checked)
        CHECK(rsc[checked] == *it);
      CHECK(checked == want.size() || rsc.size() >= want.size());
    }
  }
}

// Acceptance: under concurrent mutation, the reverse cursor of a snapshot
// returns exactly the reversed forward sequence at the same version, and
// range views are the clipped forward sequence.
void test_reverse_equals_forward_concurrent() {
  JiffyConfig cfg = cfg_fixed(8, true);  // tiny revisions: many splits/merges
  Map m(cfg);
  constexpr std::uint64_t kSpace = 4'000;
  for (std::uint64_t i = 0; i < kSpace / 2; ++i)
    m.put(splitmix64(i % kSpace), i);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t k = splitmix64(rng.next_below(kSpace));
      switch (rng.next_below(4)) {
        case 0:
          m.put(k, rng.next());
          break;
        case 1:
          m.erase(k);
          break;
        default: {
          Batch<std::uint64_t, std::uint64_t> b;
          for (int j = 0; j < 8; ++j) {
            const std::uint64_t bk = splitmix64(rng.next_below(kSpace));
            if (rng.next_bool(0.5))
              b.put(bk, rng.next());
            else
              b.erase(bk);
          }
          m.apply(std::move(b));
          break;
        }
      }
    }
  });

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> rounds{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(31 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        Snapshot s = m.snapshot();
        std::vector<KV> fwd, rev;
        // Bounded window so rounds stay fast: forward from a random key,
        // then reverse from the last forward key back to the first.
        const std::uint64_t from = splitmix64(rng.next_below(kSpace));
        auto c = s.seek(from);
        for (int i = 0; c.valid() && i < 48; ++i, c.next())
          fwd.emplace_back(c.key(), c.value());
        if (fwd.empty()) continue;
        auto r = s.seek_for_prev(fwd.back().first);
        for (std::size_t i = 0; r.valid() && i < fwd.size(); ++i, r.prev())
          rev.emplace_back(r.key(), r.value());
        std::reverse(rev.begin(), rev.end());
        CHECK(rev == fwd);  // exactly the reversed forward sequence
        // Half-open range view over the same window matches forward minus
        // the right endpoint.
        std::vector<KV> ranged;
        for (auto [k, v] : s.range(from, fwd.back().first))
          ranged.emplace_back(k, v);
        CHECK_EQ(ranged.size(), fwd.size() - 1);
        for (std::size_t i = 0; i < ranged.size(); ++i)
          CHECK(ranged[i] == fwd[i]);
        rounds.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true);
  writer.join();
  for (auto& r : readers) r.join();
  CHECK(rounds.load() > 10);
  std::printf("  reverse==forward: %llu rounds\n",
              static_cast<unsigned long long>(rounds.load()));
}

// Snapshot stability iterating backward: a snapshot's reverse walk is frozen
// while the map mutates underneath (including splits and merges).
void test_backward_snapshot_stability() {
  JiffyConfig cfg = cfg_fixed(6, true);
  Map m(cfg);
  constexpr std::uint64_t kSpace = 3'000;
  for (std::uint64_t i = 0; i < kSpace / 2; ++i) m.put(splitmix64(i), i);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(13);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t k = splitmix64(rng.next_below(kSpace));
      if (rng.next_bool(0.6))
        m.put(k, rng.next());
      else
        m.erase(k);
    }
  });

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> rounds{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(41 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        Snapshot s = m.snapshot();
        const std::uint64_t from = splitmix64(rng.next_below(kSpace));
        std::vector<KV> first, second;
        s.rscan_n(from, 64, [&](const std::uint64_t& k, const std::uint64_t& v) {
          first.emplace_back(k, v);
        });
        // Walk it again, slower, through the cursor: identical sequence.
        auto c = s.seek_for_prev(from);
        for (; c.valid() && second.size() < 64; c.prev())
          second.emplace_back(c.key(), c.value());
        CHECK(first == second);  // the snapshot did not move
        for (std::size_t i = 0; i < first.size(); ++i) {
          CHECK(first[i].first <= from);
          if (i) CHECK(first[i - 1].first > first[i].first);  // descending
          auto got = s.get(first[i].first);
          CHECK(got.has_value());
          CHECK_EQ(*got, first[i].second);
        }
        rounds.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true);
  writer.join();
  for (auto& r : readers) r.join();
  CHECK(rounds.load() > 10);
  std::printf("  backward snapshot stability: %llu rounds\n",
              static_cast<unsigned long long>(rounds.load()));
}

// The MapApi surface on every adapter family vs one oracle.
template <class Adapter>
void check_adapter_surface(const char* name) {
  Adapter a;
  std::map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(99);
  for (int i = 0; i < 4'000; ++i) {
    const std::uint64_t k = splitmix64(rng.next_below(1'500));
    if (rng.next_bool(0.7)) {
      const std::uint64_t v = rng.next();
      a.put(k, v);
      oracle[k] = v;
    } else {
      a.erase(k);
      oracle.erase(k);
    }
  }
  {
    Batch<std::uint64_t, std::uint64_t> b;
    for (int i = 0; i < 64; ++i) {
      const std::uint64_t k = splitmix64(rng.next_below(1'500));
      const std::uint64_t v = rng.next();
      b.put(k, v);
      oracle[k] = v;
    }
    a.apply(std::move(b));
  }
  CHECK_EQ(a.approx_size(), oracle.size());
  for (int probe = 0; probe < 200; ++probe) {
    const std::uint64_t k = splitmix64(rng.next_below(1'500));
    CHECK_EQ(a.contains(k), oracle.find(k) != oracle.end());
  }
  // rscan_n descending == oracle tail reversed; range_scan == oracle slice.
  const std::uint64_t from = splitmix64(700);
  std::vector<KV> rsc;
  a.rscan_n(from, 25, [&](const std::uint64_t& k, const std::uint64_t& v) {
    rsc.emplace_back(k, v);
  });
  {
    auto it = oracle.upper_bound(from);
    for (const auto& [k, v] : rsc) {
      CHECK(it != oracle.begin());
      --it;
      CHECK_EQ(k, it->first);
      CHECK_EQ(v, it->second);
    }
  }
  const std::uint64_t lo = splitmix64(100);
  const std::uint64_t hi = lo + (std::uint64_t{1} << 60);
  std::vector<KV> got;
  a.range_scan(lo, hi, [&](const std::uint64_t& k, const std::uint64_t& v) {
    got.emplace_back(k, v);
  });
  std::vector<KV> want;
  for (auto it = oracle.lower_bound(lo); it != oracle.end() && it->first < hi;
       ++it)
    want.emplace_back(it->first, it->second);
  CHECK(got == want);
  std::printf("  adapter surface OK: %s (%zu entries)\n", name,
              oracle.size());
}

}  // namespace

int main() {
  test_cursor_oracle(cfg_fixed(8, true));
  test_cursor_oracle(cfg_fixed(8, false));
  test_cursor_oracle(cfg_fixed(64, true));
  {
    JiffyConfig auto_cfg;  // autoscaler on, default sizes
    test_cursor_oracle(auto_cfg);
  }
  test_reverse_equals_forward_concurrent();
  test_backward_snapshot_stability();
  check_adapter_surface<JiffyAdapter<std::uint64_t, std::uint64_t>>("jiffy");
  check_adapter_surface<CslmAdapter<std::uint64_t, std::uint64_t>>("cslm");
  check_adapter_surface<LfListAdapter<std::uint64_t, std::uint64_t>>(
      "lf-list");
  check_adapter_surface<KaryAdapter<std::uint64_t, std::uint64_t>>(
      "k-ary(stub)");
  std::puts("test_cursor_range OK");
  return 0;
}
