// 4-thread stress: all operation types (put/erase/get/batch/scan/snapshot)
// hammering one map. Two phases:
//   1. disjoint key ranges — each thread verifies its range against a local
//      shadow map afterwards (catches lost updates across node splits);
//   2. fully shared range — no semantic oracle, but scans check ordering
//      invariants and the sanitizer build (TSan preset) checks the rest.
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "core/jiffy.h"
#include "tests/test_util.h"
#include "workload/keyvalue.h"

using namespace jiffy;

namespace {

using Map = JiffyMap<std::uint64_t, std::uint64_t>;
using B = Batch<std::uint64_t, std::uint64_t>;

void phase_disjoint(Map& m) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1 << 12;
  std::vector<std::map<std::uint64_t, std::uint64_t>> shadows(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto& shadow = shadows[t];
      const std::uint64_t base = static_cast<std::uint64_t>(t) << 32;
      Rng rng(900 + t);
      for (int i = 0; i < 30'000; ++i) {
        const std::uint64_t k = base + rng.next_below(kPerThread);
        switch (rng.next_below(5)) {
          case 0:
          case 1: {
            const std::uint64_t v = rng.next();
            m.put(k, v);
            shadow[k] = v;
            break;
          }
          case 2:
            m.erase(k);
            shadow.erase(k);
            break;
          case 3: {
            B ops;
            for (int j = 0; j < 8; ++j) {
              const std::uint64_t bk = base + rng.next_below(kPerThread);
              if (rng.next_bool(0.7)) {
                const std::uint64_t v = rng.next();
                ops.put(bk, v);
                shadow[bk] = v;
              } else {
                ops.erase(bk);
                shadow.erase(bk);
              }
            }
            m.apply(std::move(ops));
            break;
          }
          default: {
            auto got = m.get(k);
            auto it = shadow.find(k);
            CHECK_EQ(got.has_value(), it != shadow.end());
            if (got) CHECK_EQ(*got, it->second);
            break;
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();

  // Post-hoc: every thread's range matches its shadow exactly.
  for (int t = 0; t < kThreads; ++t) {
    const std::uint64_t base = static_cast<std::uint64_t>(t) << 32;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    m.scan_n(base, kPerThread + 10,
             [&](const std::uint64_t& k, const std::uint64_t& v) {
               if (k < base + kPerThread) got.emplace_back(k, v);
             });
    CHECK_EQ(got.size(), shadows[t].size());
    auto it = shadows[t].begin();
    for (const auto& [k, v] : got) {
      CHECK_EQ(k, it->first);
      CHECK_EQ(v, it->second);
      ++it;
    }
  }
}

void phase_shared(Map& m) {
  constexpr std::uint64_t kSpace = 1 << 13;
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      Rng rng(55 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = splitmix64(rng.next_below(kSpace));
        switch (rng.next_below(6)) {
          case 0:
          case 1:
            m.put(k, rng.next());
            break;
          case 2:
            m.erase(k);
            break;
          case 3: {
            B ops;
            for (int j = 0; j < 16; ++j) {
              const std::uint64_t bk = splitmix64(rng.next_below(kSpace));
              if (rng.next_bool(0.5))
                ops.put(bk, rng.next());
              else
                ops.erase(bk);
            }
            m.apply(std::move(ops));
            break;
          }
          case 4: {
            std::uint64_t prev = 0;
            bool first = true;
            m.scan_n(k, 100, [&](const std::uint64_t& sk, const std::uint64_t&) {
              CHECK(sk >= k);
              CHECK(first || sk > prev);
              prev = sk;
              first = false;
            });
            break;
          }
          default: {
            Snapshot s = m.snapshot();
            s.get(k);
            break;
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true);
  for (auto& t : ts) t.join();
}

}  // namespace

int main() {
  JiffyConfig cfg;
  cfg.autoscaler.enabled = true;
  cfg.autoscaler.min_size = 8;  // small revisions: maximum split churn
  cfg.autoscaler.max_size = 48;
  cfg.autoscaler.interval_s = 0.005;
  {
    Map m(cfg);
    phase_disjoint(m);
    phase_shared(m);
    const auto st = m.debug_stats();
    std::printf("  final: %zu nodes, %zu entries, avg rev %.1f\n",
                st.node_count, st.entry_count, st.avg_revision_size);
  }
  std::puts("test_stress OK");
  return 0;
}
