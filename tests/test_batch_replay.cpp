// Batch replay helping under targeted writer kills (requires the engine to
// be built with JIFFY_SCHEDULE_POINTS).
//
// Each scenario parks a victim writer at one batch schedule point — before
// an install CAS, before a watermark bump, before the final stamp — via a
// FaultPlan kBlock trigger, then proves:
//   1. readers never block and observe the batch all-or-nothing while the
//      writer is parked,
//   2. an ordinary concurrent writer that routes into a pending node
//      completes the whole batch by replaying ops[installed..) from the
//      published descriptor (wait_writable -> help_revision -> run_batch),
//   3. the victim, once released, retires harmlessly (its remaining CASes
//      lose to the helper's) and the final state is exactly one batch
//      application.
// A final scenario stalls (not blocks) the merge windows under reader load.
//
// Only even keys are populated: anchors are always existing keys, so key 1
// is guaranteed to route into the node that owns batch key 0 — the first
// group's node, which is pending the moment one group is installed. The
// helper's no-op erase(1) therefore deterministically meets the stalled
// batch without perturbing the checked state.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/jiffy.h"
#include "test_util.h"

#if !defined(JIFFY_SCHEDULE_POINTS) || !JIFFY_SCHEDULE_POINTS
#error "test_batch_replay must be compiled with JIFFY_SCHEDULE_POINTS=1"
#endif

namespace {

using Map = jiffy::JiffyMap<std::uint64_t, std::uint64_t>;
using jiffy::sched::FaultPlan;
using jiffy::sched::Point;

constexpr std::uint64_t kSpace = 256;     // even keys 0..254 populated
constexpr std::uint64_t kBatchStride = 16;  // batch puts k % 16 == 0
constexpr std::uint64_t kNewBase = 1000;

jiffy::JiffyConfig small_nodes() {
  jiffy::JiffyConfig cfg;
  cfg.autoscaler.enabled = false;
  cfg.autoscaler.fixed_size = 8;  // many nodes -> the batch spans many groups
  return cfg;
}

void populate(Map& map) {
  for (std::uint64_t k = 0; k < kSpace; k += 2) map.put(k, 1);
}

// Count how many batch keys already read their post-batch value at one
// consistent version; atomicity demands 0 or all.
void check_all_or_nothing(const Map& map) {
  const auto snap = map.snapshot();
  std::size_t newv = 0, total = 0;
  for (std::uint64_t k = 0; k < kSpace; k += kBatchStride) {
    ++total;
    const auto got = snap.get(k);
    CHECK(got.has_value());
    if (*got == kNewBase + k) ++newv;
    else CHECK_EQ(*got, 1u);
  }
  CHECK(newv == 0 || newv == total);
}

void scenario(Point p, std::uint64_t nth) {
  std::printf("scenario: block %s hit %llu\n", jiffy::sched::name(p),
              static_cast<unsigned long long>(nth));
  Map map(small_nodes());
  populate(map);

  FaultPlan plan;
  plan.block_at(p, nth);
  FaultPlan::install(&plan);

  std::thread victim([&map] {
    // Schedule points stay enabled on this thread only: it is the one the
    // plan is aimed at.
    jiffy::Batch<std::uint64_t, std::uint64_t> b;
    for (std::uint64_t k = 0; k < kSpace; k += kBatchStride)
      b.put(k, kNewBase + k);
    map.apply(std::move(b));
  });

  for (int i = 0; plan.blocked() == 0 && i < 40000; ++i)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  CHECK_EQ(plan.blocked(), 1u);

  // Readers make progress and see the batch atomically while the writer is
  // parked mid-protocol. (At the stamp point a reader may help-stamp and
  // legitimately see "all".)
  for (int i = 0; i < 4; ++i) check_all_or_nothing(map);

  // An unrelated writer routed into a pending node must finish the victim's
  // batch before its own op can proceed: erase(1) is a no-op on the state
  // but shares batch key 0's node, so wait_writable meets the pending
  // revision and replays the rest of the batch.
  std::thread helper([&map] {
    jiffy::sched::enable_this_thread(false);
    CHECK(!map.erase(1));
  });
  helper.join();

  // The whole batch is now visible — completed by the helper, not the
  // (still parked) victim.
  CHECK_EQ(plan.blocked(), 1u);
  for (std::uint64_t k = 0; k < kSpace; k += kBatchStride)
    CHECK_EQ(map.get(k).value(), kNewBase + k);
  check_all_or_nothing(map);

  plan.release_all();
  victim.join();
  FaultPlan::uninstall();

  // The released victim's leftover CASes must not have double-applied or
  // reverted anything.
  for (std::uint64_t k = 0; k < kSpace; k += 2) {
    const std::uint64_t want = k % kBatchStride == 0 ? kNewBase + k : 1;
    CHECK_EQ(map.get(k).value(), want);
  }
  CHECK_EQ(map.size_slow(), kSpace / 2);
  std::printf("  ok (replayed; victim retired cleanly)\n");
}

// Merge windows under stalls: no kill (a parked merge with no helper hook
// is allowed to finish on release — merges are abortable, not replayable),
// but long stalls at both merge points while readers and writers churn.
void merge_stall_scenario() {
  std::printf("scenario: stall merge_marker/merge_stamp under churn\n");
  Map map(small_nodes());
  populate(map);

  FaultPlan plan;
  for (std::uint64_t n = 1; n <= 6; ++n) {
    plan.stall_at(Point::kMergeMarker, n, 20000);
    plan.stall_at(Point::kMergeStamp, n, 20000);
  }
  FaultPlan::install(&plan);

  std::thread churn([&map] {
    // Erase/reinsert waves: shrinks nodes below the merge threshold, so
    // merges (and their stalled windows) fire repeatedly.
    for (int round = 0; round < 6; ++round) {
      for (std::uint64_t k = 0; k < kSpace; k += 2)
        if (k % 8 != 0) map.erase(k);
      for (std::uint64_t k = 0; k < kSpace; k += 2)
        if (k % 8 != 0) map.put(k, 2 + static_cast<std::uint64_t>(round));
    }
  });
  std::thread reads([&map] {
    jiffy::sched::enable_this_thread(false);
    for (int i = 0; i < 2000; ++i) {
      const auto snap = map.snapshot();
      std::uint64_t n = 0, prev = 0;
      bool first = true;
      for (auto [k, v] : snap.range(0, kSpace)) {
        CHECK(first || k > prev);  // ordered, no duplicates mid-merge
        first = false;
        prev = k;
        ++n;
      }
      CHECK(n >= kSpace / 8);  // the k%8==0 keys are never erased
    }
  });
  churn.join();
  reads.join();
  FaultPlan::uninstall();
  CHECK_EQ(map.size_slow(), kSpace / 2);
  std::printf("  ok\n");
}

}  // namespace

int main() {
  jiffy::sched::enable_this_thread(false);  // aim plans at victims only

  // Before the Nth install CAS (first group already in at nth>=2: the
  // descriptor is published and reachable, so helpers can replay).
  scenario(Point::kBatchInstall, 2);
  scenario(Point::kBatchInstall, 9);
  // After an install, before the watermark bump.
  scenario(Point::kBatchWatermark, 1);
  scenario(Point::kBatchWatermark, 5);
  // Everything installed, final stamp missing.
  scenario(Point::kBatchStamp, 1);

  merge_stall_scenario();

  std::printf("test_batch_replay OK\n");
  return 0;
}
