// Minimal check macros for the dependency-free test binaries.
#pragma once

#include <cstdio>
#include <cstdlib>

#define CHECK(cond)                                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define CHECK_EQ(a, b)                                                     \
  do {                                                                     \
    if (!((a) == (b))) {                                                   \
      std::fprintf(stderr, "CHECK_EQ failed at %s:%d: %s == %s\n",         \
                   __FILE__, __LINE__, #a, #b);                            \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
