// Observability layer regressions (ISSUE 10, DESIGN.md §15): counter
// exactness under multi-thread churn, histogram bucket/percentile math
// against a sorted-vector oracle, and trace-ring wraparound plus a binary
// dump/decode round-trip (the C++ twin of tools/traceview.py's reader).
//
// The trace test shrinks the per-thread ring via JIFFY_TRACE_EVENTS before
// the first traced event — the capacity is latched at first ring
// construction, so the setenv must stay the first line of main().
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "test_util.h"
#include "workload/rng.h"

namespace {

using jiffy::obs::Ev;
using jiffy::obs::LatHistogram;
using jiffy::obs::MetricsSnapshot;
using jiffy::obs::TraceEvent;

// ---- counters: exact totals under 8-thread churn ---------------------------
// Each thread bumps a known per-event count; the post-join snapshot delta
// (join orders the relaxed shard writes) must match the sum exactly — the
// StripedCounter quiescent-exactness contract, exercised through the macro
// layer and the registry rather than a local counter instance.
void test_counters_exact() {
  const MetricsSnapshot before = jiffy::obs::snapshot();

  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 20'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([t] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        JIFFY_COUNT(cas_install_lost);
        if (i % 2 == 0) JIFFY_COUNT(help_stamp);
        if (i % 5 == 0) JIFFY_COUNT_N(split, 2);
      }
      // Each thread raises the gauge to a distinct value; max survives.
      JIFFY_COUNT_MAX_LIMBO(100 + t);
    });
  }
  for (auto& t : ts) t.join();

  const MetricsSnapshot d = jiffy::obs::snapshot() - before;
#if JIFFY_OBS
  CHECK_EQ(d[Ev::cas_install_lost], kThreads * kPerThread);
  CHECK_EQ(d[Ev::help_stamp], kThreads * (kPerThread / 2));
  CHECK_EQ(d[Ev::split], kThreads * 2 * ((kPerThread + 4) / 5));
  CHECK_EQ(d[Ev::merge], 0);
  CHECK(d.limbo_peak >= 100 + kThreads - 1);
#else
  CHECK_EQ(d[Ev::cas_install_lost], 0);
#endif
  std::puts("counters: exact under churn");
}

// ---- histogram: bucket math + percentiles vs sorted oracle -----------------
void test_histogram_buckets() {
  // index_of/upper_edge are inverses on bucket edges, and every value maps
  // to a bucket whose edge bounds it from above within the error budget.
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{31},
        std::uint64_t{32}, std::uint64_t{33}, std::uint64_t{63},
        std::uint64_t{64}, std::uint64_t{1000}, std::uint64_t{1} << 20,
        (std::uint64_t{1} << 40) + 12345, ~std::uint64_t{0}}) {
    const std::size_t i = LatHistogram::index_of(v);
    CHECK(i < LatHistogram::kBucketCount);
    const std::uint64_t hi = LatHistogram::upper_edge(i);
    CHECK(hi >= v);
    // Relative quantization error <= 2^-kSubBits.
    CHECK(static_cast<double>(hi - v) <=
          static_cast<double>(v) / LatHistogram::kSubCount + 1.0);
    CHECK_EQ(LatHistogram::index_of(hi), i);
    if (hi + 1 != 0) CHECK_EQ(LatHistogram::index_of(hi + 1), i + 1);
  }
  std::puts("histogram: bucket mapping");
}

void test_histogram_percentiles() {
  jiffy::Rng rng(0x0b5e);
  // Mixed scales: a dense low mode plus a heavy tail, the shape latency
  // distributions actually take.
  std::vector<std::uint64_t> vals;
  LatHistogram h;
  for (int i = 0; i < 100'000; ++i) {
    std::uint64_t v = rng.next() % 1000;           // ~1µs-scale mode
    if (i % 100 == 0) v = 10'000 + rng.next() % 90'000;   // p99 tail
    if (i % 1000 == 0) v = 1'000'000 + rng.next() % 1'000'000;  // p999 tail
    vals.push_back(v);
    h.record(v);
  }
  CHECK_EQ(h.count(), vals.size());
  std::sort(vals.begin(), vals.end());
  CHECK_EQ(h.max(), vals.back());

  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    // Oracle: smallest value covering ceil(p% of n) samples.
    std::size_t rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(vals.size()));
    if (static_cast<double>(rank) < p / 100.0 * static_cast<double>(vals.size()))
      ++rank;
    if (rank == 0) rank = 1;
    const std::uint64_t exact = vals[rank - 1];
    const std::uint64_t got = h.value_at_percentile(p);
    // Never under the exact order statistic; over by at most one bucket
    // width (<= 3.125% relative, +1 for the integer edges).
    CHECK(got >= exact);
    CHECK(static_cast<double>(got - exact) <=
          static_cast<double>(exact) / LatHistogram::kSubCount + 1.0);
  }

  // merge() must equal recording the union.
  LatHistogram a, b, u;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next() % 100'000;
    (i % 2 ? a : b).record(v);
    u.record(v);
  }
  a.merge(b);
  CHECK_EQ(a.count(), u.count());
  CHECK_EQ(a.max(), u.max());
  for (double p : {50.0, 99.0, 99.9})
    CHECK_EQ(a.value_at_percentile(p), u.value_at_percentile(p));
  std::puts("histogram: percentiles vs oracle");
}

// ---- trace ring: wraparound + dump/decode round-trip -----------------------
#if JIFFY_OBS
struct DumpHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t event_size;
  std::uint64_t event_count;
  std::uint64_t ticks_hint;
};

void test_trace_roundtrip(std::size_t ring_cap) {
  jiffy::obs::trace_enable(true);
  // Two threads, each emitting well past the ring capacity so both rings
  // wrap; events carry a per-thread sequence number in `a` so the decode can
  // verify "newest kept, oldest dropped, order preserved".
  constexpr int kThreads = 2;
  const std::uint64_t kEmit = 5 * static_cast<std::uint64_t>(ring_cap) + 7;
  // Barrier after the first event: rings are lazily acquired at a thread's
  // first emit and recycled at exit, so without it one thread could finish
  // and donate its ring to the other (single-core scheduling), collapsing
  // the two expected rings into one.
  std::atomic<int> armed{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([t, kEmit, &armed] {
      jiffy::obs::trace_sched(static_cast<unsigned>(t));  // acquire my ring
      armed.fetch_add(1, std::memory_order_relaxed);
      // relaxed: startup rendezvous only; no payload is published through it.
      while (armed.load(std::memory_order_relaxed) < kThreads)
        std::this_thread::yield();
      for (std::uint64_t i = 0; i < kEmit; ++i) {
        switch (i % 3) {
          case 0:
            jiffy::obs::trace_retire(reinterpret_cast<void*>(i + 1), i,
                                     jiffy::obs::RetireTag::kRevUnref);
            break;
          case 1: jiffy::obs::trace_sched(static_cast<unsigned>(t)); break;
          default: jiffy::obs::trace_epoch(i); break;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  jiffy::obs::trace_enable(false);

  const char* path = "test_obs_trace.bin";
  const std::uint64_t written = jiffy::obs::trace_dump(path);
  // Both rings wrapped: exactly ring_cap retained per traced thread. The
  // main thread never traced, so it owns no ring.
  CHECK_EQ(written, static_cast<std::uint64_t>(kThreads) * ring_cap);

  std::FILE* f = std::fopen(path, "rb");
  CHECK(f != nullptr);
  DumpHeader hd;
  CHECK_EQ(std::fread(&hd.magic, 1, 8, f), std::size_t{8});
  CHECK_EQ(std::fread(&hd.version, sizeof hd.version, 1, f), std::size_t{1});
  CHECK_EQ(std::fread(&hd.event_size, sizeof hd.event_size, 1, f),
           std::size_t{1});
  CHECK_EQ(std::fread(&hd.event_count, sizeof hd.event_count, 1, f),
           std::size_t{1});
  CHECK_EQ(std::fread(&hd.ticks_hint, sizeof hd.ticks_hint, 1, f),
           std::size_t{1});
  CHECK_EQ(std::memcmp(hd.magic, "JFTRACE1", 8), 0);
  CHECK_EQ(hd.version, 1u);
  CHECK_EQ(hd.event_size, sizeof(TraceEvent));
  CHECK_EQ(hd.event_count, written);

  std::vector<TraceEvent> ev(written);
  CHECK_EQ(std::fread(ev.data(), sizeof(TraceEvent), written, f), written);
  // Header promised exactly event_count records.
  CHECK_EQ(std::fread(&hd.version, 1, 1, f), std::size_t{0});
  std::fclose(f);
  std::remove(path);

  // Per-tid: timestamps monotone (oldest-first within a ring) and the
  // retained window is the newest ring_cap events in emission order.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& e : ev) by_tid[e.tid].push_back(&e);
  CHECK_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, list] : by_tid) {
    CHECK_EQ(list.size(), ring_cap);
    std::uint64_t prev_ts = 0;
    std::uint64_t prev_seq = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const TraceEvent& e = *list[i];
      CHECK(e.ts >= prev_ts);
      prev_ts = e.ts;
      CHECK(e.kind >= 1 && e.kind <= 3);
      // Reconstruct the emission sequence number from the kind-specific
      // payload (retire: a = seq+1; epoch: a = seq; sched carries none).
      std::uint64_t seq = 0;
      bool has_seq = true;
      if (e.kind == 2) {
        seq = e.a - 1;
        CHECK_EQ(e.b, seq);      // bytes field carried the raw counter
        CHECK_EQ(e.tag, 1);      // kRevUnref
        CHECK_EQ(seq % 3, 0u);
      } else if (e.kind == 3) {
        seq = e.a;
        CHECK_EQ(seq % 3, 2u);
      } else {
        has_seq = false;
      }
      if (has_seq) {
        CHECK(seq >= kEmit - ring_cap);  // only the newest window survives
        CHECK(i == 0 || seq > prev_seq);
        prev_seq = seq;
      }
    }
  }
  std::printf("trace: wraparound round-trip (cap=%zu, %" PRIu64
              " events/thread)\n",
              ring_cap, kEmit);
}
#endif  // JIFFY_OBS

}  // namespace

int main() {
#if JIFFY_OBS
  // Must precede the first traced event: the ring capacity is latched once.
  setenv("JIFFY_TRACE_EVENTS", "128", /*overwrite=*/1);
#endif

  test_counters_exact();
  test_histogram_buckets();
  test_histogram_percentiles();
#if JIFFY_OBS
  test_trace_roundtrip(128);
#else
  CHECK_EQ(jiffy::obs::trace_dump("unused"), 0u);
  std::puts("trace: compiled out (JIFFY_OBS=0)");
#endif

  std::printf("test_obs OK\n");
  return 0;
}
