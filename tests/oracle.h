// Expected-state oracle for stress-testing JiffyMap (modeled on RocksDB's
// db_stress ExpectedState, adapted to multiversioned reads).
//
// A sharded, lock-striped shadow map records, per key, a bounded history of
// committed states bracketed by TSC reads: a mutator locks the key's stripe,
// reads the clock (t0), applies the op to the map under test, reads the
// clock again (t1), and appends {t0, t1, state-after}. Because the map
// stamps every revision with a TSC value read between the op's start and
// its return, the op's linearization version provably lies in [t0, t1] —
// so a read at version V can be validated without any global stop-the-world:
//   - the last record with t1 <= V is committed at V (its state must hold),
//   - the at-most-one record whose window contains V (t0 <= V < t1) is
//     ambiguous: either its state or the committed one is acceptable,
//   - if the bounded history was truncated below V, the expected state is
//     unknown and the check is counted as skipped, never failed.
// Per key the windows never overlap (the stripe lock serializes mutators and
// t0 of the next op is read after t1 of the previous), which is what makes
// "last record with t1 <= V" well defined even after truncation (only the
// oldest records are dropped).
//
// Batches lock every involved stripe (in index order — no deadlocks) and
// append one record per key with the shared [t0, t1] window, so a validated
// reader also checks batch atomicity: seeing some keys' post-state committed
// and others' pre-state at one version is a failure.
//
// Fault-injection caveat: mutators hold stripe locks across map calls, so a
// FaultPlan used together with this oracle must only yield/stall (chaos
// mode) — a kBlock trigger on a mutator thread would park it holding a
// stripe lock and wedge the test, not the map.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "tsc/clock.h"

namespace jiffy::testing {

enum class Verdict { kOk, kSkipped, kFailed };

class Oracle {
 public:
  using Key = std::uint64_t;
  using Value = std::uint64_t;

  // One committed mutation: applied to the map at some version in [t0, t1];
  // `present`/`value` describe the key's state after it.
  struct OpRec {
    std::uint64_t t0 = 0;
    std::uint64_t t1 = 0;
    bool present = false;
    Value value = 0;
  };

  // `key_space`: keys are expected in [0, key_space). `stripes_log2`:
  // 2^n contiguous-range stripes. `history_cap`: per-key record bound.
  explicit Oracle(Key key_space, unsigned stripes_log2 = 6,
                  std::size_t history_cap = 32)
      : nstripes_(std::size_t{1} << stripes_log2),
        history_cap_(history_cap),
        stripes_(nstripes_) {
    shift_ = 0;
    while ((key_space - 1) >> shift_ >= nstripes_) ++shift_;
  }

  // ---- mutator side -------------------------------------------------------

  // Apply one single-key mutation: `op()` must perform exactly the change
  // described by (present_after, value_after) on the map under test.
  template <class F>
  void mutate(Key k, bool present_after, Value value_after, F&& op) {
    Stripe& s = stripe(k);
    std::lock_guard<std::mutex> lk(s.mu);
    const std::uint64_t t0 = clock_.read();
    op();
    const std::uint64_t t1 = clock_.read();
    append(s, k, {t0, t1, present_after, value_after});
  }

  // One atomic multi-key mutation (a Jiffy batch). `effects` lists the
  // state after the batch per key (nullopt = erased); `op()` applies it.
  template <class F>
  void mutate_batch(
      const std::vector<std::pair<Key, std::optional<Value>>>& effects,
      F&& op) {
    std::vector<std::size_t> idx;
    idx.reserve(effects.size());
    for (const auto& e : effects) idx.push_back(stripe_index(e.first));
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
    for (std::size_t i : idx) stripes_[i].mu.lock();
    const std::uint64_t t0 = clock_.read();
    op();
    const std::uint64_t t1 = clock_.read();
    for (const auto& [k, v] : effects)
      append(stripe(k), k, {t0, t1, v.has_value(), v.value_or(0)});
    for (auto it = idx.rbegin(); it != idx.rend(); ++it)
      stripes_[*it].mu.unlock();
  }

  // ---- reader side --------------------------------------------------------

  // Validate a versioned read: `got` is what the map returned for k at
  // version v (from a snapshot, versioned scan, or cursor).
  Verdict check_at(Key k, std::uint64_t v,
                   const std::optional<Value>& got) const {
    Stripe& s = stripe(k);
    std::lock_guard<std::mutex> lk(s.mu);
    return check_locked(s, k, v, v, got);
  }

  // Validate an unversioned read: r0/r1 are clock reads the caller took
  // immediately before/after the map lookup — the read linearized between
  // them, so any state live in that window is acceptable.
  Verdict check_window(Key k, std::uint64_t r0, std::uint64_t r1,
                       const std::optional<Value>& got) const {
    Stripe& s = stripe(k);
    std::lock_guard<std::mutex> lk(s.mu);
    return check_locked(s, k, r0, r1, got);
  }

  // Validate a consistent scan of [lo, hi) at version v: `out` is the
  // map-reported content, ascending. Checks both directions — every
  // reported entry must be a valid state at v, and every tracked key whose
  // absence is impossible at v must be reported. Returns the worst verdict;
  // increments the tally counters per key checked.
  Verdict check_range(Key lo, Key hi, std::uint64_t v,
                      const std::vector<std::pair<Key, Value>>& out,
                      std::uint64_t* ok, std::uint64_t* skipped) const {
    Verdict worst = Verdict::kOk;
    std::size_t oi = 0;
    const std::size_t s_lo = stripe_index(lo);
    const std::size_t s_hi = hi == 0 ? 0 : stripe_index(hi - 1);
    for (std::size_t si = s_lo; si <= s_hi && si < nstripes_; ++si) {
      Stripe& s = stripes_[si];
      std::lock_guard<std::mutex> lk(s.mu);
      for (auto it = s.keys.lower_bound(lo);
           it != s.keys.end() && it->first < hi; ++it) {
        const Key k = it->first;
        std::optional<Value> got;
        while (oi < out.size() && out[oi].first < k) {
          // The map reported a key the oracle never touched: fabricated.
          report_fail(out[oi].first, v, "untracked key in range result");
          worst = Verdict::kFailed;
          ++oi;
        }
        if (oi < out.size() && out[oi].first == k) got = out[oi++].second;
        const Verdict vd = check_locked(s, k, v, v, got);
        if (vd == Verdict::kFailed)
          worst = Verdict::kFailed;
        else if (vd == Verdict::kSkipped && worst == Verdict::kOk)
          worst = Verdict::kSkipped;
        if (vd == Verdict::kOk && ok) ++*ok;
        if (vd == Verdict::kSkipped && skipped) ++*skipped;
      }
    }
    for (; oi < out.size(); ++oi) {
      if (out[oi].first >= hi) {
        report_fail(out[oi].first, v, "key outside requested range");
        worst = Verdict::kFailed;
      }
    }
    return worst;
  }

  // Quiescent full check: no concurrent mutators, every key unambiguous.
  template <class MapT>
  std::uint64_t check_all_quiescent(const MapT& m, std::uint64_t v) const {
    std::uint64_t failed = 0;
    for (std::size_t si = 0; si < nstripes_; ++si) {
      Stripe& s = stripes_[si];
      std::lock_guard<std::mutex> lk(s.mu);
      for (const auto& [k, hist] : s.keys) {
        if (check_locked(s, k, v, v, m.get(k)) == Verdict::kFailed) ++failed;
      }
    }
    return failed;
  }

  std::uint64_t truncation_skips() const {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < nstripes_; ++i) {
      std::lock_guard<std::mutex> lk(stripes_[i].mu);
      for (const auto& [k, h] : stripes_[i].keys) n += h.truncated ? 1 : 0;
    }
    return n;
  }

 private:
  struct Hist {
    std::vector<OpRec> recs;
    bool truncated = false;
  };

  struct Stripe {
    mutable std::mutex mu;
    std::map<Key, Hist> keys;
  };

  std::size_t stripe_index(Key k) const {
    const std::size_t i = static_cast<std::size_t>(k >> shift_);
    return i < nstripes_ ? i : nstripes_ - 1;
  }
  Stripe& stripe(Key k) const { return stripes_[stripe_index(k)]; }

  void append(Stripe& s, Key k, OpRec rec) {
    Hist& h = s.keys[k];
    if (h.recs.size() >= history_cap_) {
      h.recs.erase(h.recs.begin(),
                   h.recs.begin() +
                       static_cast<std::ptrdiff_t>(h.recs.size() / 2));
      h.truncated = true;
    }
    h.recs.push_back(rec);
  }

  // Core validation; the read linearized at some version in [v0, v1]
  // (v0 == v1 for versioned reads). Caller holds the stripe lock.
  Verdict check_locked(Stripe& s, Key k, std::uint64_t v0, std::uint64_t v1,
                       const std::optional<Value>& got) const {
    auto it = s.keys.find(k);
    const Hist* h = it == s.keys.end() ? nullptr : &it->second;
    // Acceptable states: the one committed entering the window, plus the
    // after-state of every record overlapping it.
    bool base_known = true;
    std::optional<Value> base;  // nullopt = absent
    const OpRec* last_committed = nullptr;
    if (h) {
      for (const OpRec& r : h->recs) {
        if (r.t1 <= v0) last_committed = &r;
      }
      if (last_committed) {
        if (last_committed->present) base = last_committed->value;
      } else if (h->truncated) {
        base_known = false;  // v0 predates the retained history
      }
    }
    if (base_known && matches(got, base)) return Verdict::kOk;
    if (h) {
      for (const OpRec& r : h->recs) {
        if (r.t0 <= v1 && r.t1 > v0) {  // window overlaps [v0, v1]
          std::optional<Value> st;
          if (r.present) st = r.value;
          if (matches(got, st)) return Verdict::kOk;
        }
      }
    }
    if (!base_known) return Verdict::kSkipped;
    report_fail(k, v0, got ? "wrong/extra value" : "missing value");
    return Verdict::kFailed;
  }

  static bool matches(const std::optional<Value>& got,
                      const std::optional<Value>& want) {
    return got.has_value() == want.has_value() &&
           (!got.has_value() || *got == *want);
  }

  static void report_fail(Key k, std::uint64_t v, const char* what) {
    std::fprintf(stderr, "oracle: key %llu at version %llu: %s\n",
                 static_cast<unsigned long long>(k),
                 static_cast<unsigned long long>(v), what);
  }

  TscClock clock_;  // same global TSC domain as the map's stamps
  std::size_t nstripes_;
  unsigned shift_ = 0;
  std::size_t history_cap_;
  mutable std::vector<Stripe> stripes_;
};

}  // namespace jiffy::testing
