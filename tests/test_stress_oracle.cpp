// Expected-state stress: mixed put/erase/batch churn validated against the
// lock-striped oracle (tests/oracle.h) — point gets, snapshot reads, range
// scans and reverse cursors all checked for linearizable-at-version results
// while splits, merges and the purge pass run underneath.
//
// When built with JIFFY_SCHEDULE_POINTS (the stress/nightly configuration) a
// seeded chaos FaultPlan perturbs every engine schedule point with bounded
// yields/stalls; the seed is taken from JIFFY_STRESS_SEED (or randomized and
// logged) so a failing schedule is reproducible. Duration scales with
// JIFFY_STRESS_SECONDS (default 2).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/jiffy.h"
#include "obs/trace.h"
#include "oracle.h"
#include "test_util.h"
#include "workload/rng.h"

namespace {

using Map = jiffy::JiffyMap<std::uint64_t, std::uint64_t>;
using jiffy::testing::Oracle;
using jiffy::testing::Verdict;

constexpr std::uint64_t kKeySpace = 4096;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (!s || !*s) return fallback;
  return std::strtoull(s, nullptr, 10);
}

struct Tally {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> skipped{0};
  std::atomic<std::uint64_t> failed{0};

  void add(Verdict v) {
    switch (v) {
      case Verdict::kOk: ok.fetch_add(1, std::memory_order_relaxed); break;
      case Verdict::kSkipped:
        skipped.fetch_add(1, std::memory_order_relaxed);
        break;
      case Verdict::kFailed:
        failed.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
};

void mutator(Map& map, Oracle& oracle, std::uint64_t seed,
             std::atomic<bool>& stop) {
  jiffy::Rng rng(seed);
  while (!stop.load(std::memory_order_relaxed)) {
    const std::uint64_t k = rng.next() % kKeySpace;
    const std::uint64_t dice = rng.next() % 100;
    if (dice < 50) {
      const std::uint64_t v = rng.next();
      oracle.mutate(k, /*present_after=*/true, v,
                    [&] { map.put(k, v); });
    } else if (dice < 80) {
      oracle.mutate(k, /*present_after=*/false, 0, [&] { map.erase(k); });
    } else {
      // Batch of 2-16 ops over nearby keys: exercises multi-group replay.
      const std::size_t n = 2 + rng.next() % 15;
      jiffy::Batch<std::uint64_t, std::uint64_t> b;
      std::vector<std::pair<std::uint64_t, std::optional<std::uint64_t>>>
          effects;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t bk = (k + rng.next() % 256) % kKeySpace;
        // Skip duplicate keys in the effect list; Batch dedupes last-wins,
        // so the oracle must record exactly one state per key.
        bool dup = false;
        for (const auto& e : effects) dup = dup || e.first == bk;
        if (dup) continue;
        if (rng.next() % 3 == 0) {
          b.erase(bk);
          effects.emplace_back(bk, std::nullopt);
        } else {
          const std::uint64_t bv = rng.next();
          b.put(bk, bv);
          effects.emplace_back(bk, bv);
        }
      }
      oracle.mutate_batch(effects, [&] { map.apply(std::move(b)); });
    }
  }
}

void reader(const Map& map, const Oracle& oracle, std::uint64_t seed,
            std::atomic<bool>& stop, Tally& tally) {
  jiffy::Rng rng(seed);
  jiffy::TscClock clock;
  while (!stop.load(std::memory_order_relaxed)) {
    const std::uint64_t k = rng.next() % kKeySpace;
    switch (rng.next() % 4) {
      case 0: {  // unversioned point get, validated by read window
        const std::uint64_t r0 = clock.read();
        const std::optional<std::uint64_t> got = map.get(k);
        const std::uint64_t r1 = clock.read();
        tally.add(oracle.check_window(k, r0, r1, got));
        break;
      }
      case 1: {  // snapshot point reads: several keys at one version
        const auto snap = map.snapshot();
        for (int i = 0; i < 8; ++i) {
          const std::uint64_t sk = rng.next() % kKeySpace;
          tally.add(oracle.check_at(sk, snap.version(), snap.get(sk)));
        }
        break;
      }
      case 2: {  // consistent range scan, both directions of completeness
        const std::uint64_t lo = k, hi = std::min(k + 128, kKeySpace);
        const auto snap = map.snapshot();
        std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
        for (auto [key, val] : snap.range(lo, hi)) out.emplace_back(key, val);
        std::uint64_t ok = 0, skipped = 0;
        const Verdict v =
            oracle.check_range(lo, hi, snap.version(), out, &ok, &skipped);
        tally.ok.fetch_add(ok, std::memory_order_relaxed);
        tally.skipped.fetch_add(skipped, std::memory_order_relaxed);
        if (v == Verdict::kFailed)
          tally.failed.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      default: {  // reverse cursor: ordered + each entry valid at version
        const auto snap = map.snapshot();
        auto c = snap.seek_for_prev(k);
        std::uint64_t prev_key = ~0ull;
        for (int i = 0; i < 32 && c.valid(); ++i, c.prev()) {
          CHECK(c.key() < prev_key || prev_key == ~0ull);
          prev_key = c.key();
          tally.add(oracle.check_at(c.key(), snap.version(), c.value()));
        }
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seconds = env_u64("JIFFY_STRESS_SECONDS", 2);
  std::uint64_t seed = env_u64("JIFFY_STRESS_SEED", 0);
  if (seed == 0) seed = std::random_device{}();
  std::printf("stress oracle: seed=%llu seconds=%llu\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seconds));

  // Protocol forensics: --trace=<file> (or JIFFY_TRACE=<file>, which the
  // nightly job sets so ctest needs no per-test arguments) records every
  // schedule-point hit, retire and epoch advance into the per-thread rings
  // and dumps them after join — the "logged retire stream" the ROADMAP's
  // heap-corruption hunt calls for. Decode with tools/traceview.py.
  std::string trace_path;
  if (const char* env = std::getenv("JIFFY_TRACE")) trace_path = env;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--trace=", 0) == 0) trace_path = a.substr(8);
  }
  if (!trace_path.empty()) {
    jiffy::obs::trace_enable(true);
    std::printf("stress oracle: tracing to %s\n", trace_path.c_str());
  }

#if defined(JIFFY_SCHEDULE_POINTS) && JIFFY_SCHEDULE_POINTS
  // Chaos only: bounded yields/stalls at engine schedule points. Mutators
  // hold oracle stripe locks across map calls, so kBlock is off the table
  // here (see oracle.h); the targeted-block scenarios live in
  // test_batch_replay.
  jiffy::sched::FaultPlan plan;
  plan.chaos(seed, /*per_mille=*/30);
  jiffy::sched::FaultPlan::install(&plan);
  std::printf("stress oracle: fault injection on (chaos 30/1000)\n");
#endif

  jiffy::JiffyConfig cfg;
  cfg.autoscaler.min_size = 8;
  cfg.autoscaler.max_size = 48;  // small revisions: constant split/merge
  cfg.reclaim.threshold = 64;    // frequent cooperative purge passes
  Map map(cfg);
  Oracle oracle(kKeySpace);

  // Seed half the key space so erases and merges bite from the start.
  jiffy::Rng seed_rng(seed ^ 0x5eedull);
  for (std::uint64_t k = 0; k < kKeySpace; k += 2) {
    const std::uint64_t v = seed_rng.next();
    oracle.mutate(k, true, v, [&] { map.put(k, v); });
  }

  std::atomic<bool> stop{false};
  Tally tally;
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned n_mut = hw >= 8 ? 4 : 2, n_rd = hw >= 8 ? 4 : 2;
  std::vector<std::thread> threads;
  for (unsigned i = 0; i < n_mut; ++i)
    threads.emplace_back(
        [&, i] { mutator(map, oracle, seed + i, stop); });
  for (unsigned i = 0; i < n_rd; ++i)
    threads.emplace_back(
        [&, i] { reader(map, oracle, seed + 100 + i, stop, tally); });

  // Mid-churn approx_size() slack check (sampled while mutators run): the
  // sharded counter's documented contract is "off by at most the ops in
  // flight during the aggregate sweep". Here at most n_mut ops are in
  // flight, each moving the count by <= 16 (the largest batch), but both
  // approx_size() and the size_slow() walk take time — mutations landing
  // between the two measurements widen the apparent gap — so assert a
  // deliberately generous envelope that still catches systematic drift
  // (lost updates would diverge without bound under this much churn).
  constexpr std::int64_t kSizeSlack = 512;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  std::uint64_t size_checks = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const auto approx = static_cast<std::int64_t>(map.approx_size());
    const auto slow = static_cast<std::int64_t>(map.size_slow());
    const std::int64_t gap = approx > slow ? approx - slow : slow - approx;
    if (gap > kSizeSlack) {
      std::fprintf(stderr,
                   "approx_size drifted: approx=%lld slow=%lld gap=%lld\n",
                   static_cast<long long>(approx),
                   static_cast<long long>(slow), static_cast<long long>(gap));
      std::abort();
    }
    ++size_checks;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  // Quiescent: every delta has landed in its shard and the sweep is exact.
  CHECK(size_checks > 0);
  CHECK_EQ(map.approx_size(), map.size_slow());

  // Quiescent pass: no mutators, every tracked key must now be exact.
  const std::uint64_t final_failed =
      oracle.check_all_quiescent(map, jiffy::TscClock{}.read());

  // Reclamation must have kept pace: after a final purge the number of
  // still-linked tombstones is bounded by the trigger threshold plus the
  // shells of merges still in flight at stop time, not by total churn.
  for (int i = 0; i < 6; ++i) map.purge();
  const auto stats = map.debug_stats();
  std::printf(
      "stress oracle: ok=%llu skipped=%llu failed=%llu final_failed=%llu "
      "tombstones=%zu purged=%llu\n",
      static_cast<unsigned long long>(tally.ok.load()),
      static_cast<unsigned long long>(tally.skipped.load()),
      static_cast<unsigned long long>(tally.failed.load()),
      static_cast<unsigned long long>(final_failed), stats.tombstone_count,
      static_cast<unsigned long long>(stats.purged_total));

#if defined(JIFFY_SCHEDULE_POINTS) && JIFFY_SCHEDULE_POINTS
  jiffy::sched::FaultPlan::uninstall();
#endif

  // Workers are joined and the final purges above are done on this thread,
  // so every ring is quiescent — the dump contract trace.h states.
  if (!trace_path.empty()) {
    const std::uint64_t n = jiffy::obs::trace_dump(trace_path.c_str());
    std::printf("stress oracle: wrote %llu trace events to %s\n",
                static_cast<unsigned long long>(n), trace_path.c_str());
    CHECK(n > 0);
  }

  CHECK(tally.ok.load() > 0);  // the harness actually validated something
  CHECK_EQ(tally.failed.load(), 0u);
  CHECK_EQ(final_failed, 0u);
  CHECK(stats.tombstone_count < 2 * cfg.reclaim.threshold + 64);
  std::printf("test_stress_oracle OK\n");
  return 0;
}
