// Epoch-based reclamation (EBR) for lock-free readers.
//
// Classic three-epoch scheme: threads pin the global epoch while inside a
// Guard; retired objects are tagged with the epoch they were retired in and
// freed once the global epoch has advanced twice past it (no pinned thread
// can still hold a reference by then). Thread records are registered lazily,
// recycled after thread exit, and never removed, so registration is
// wait-free after the first call and safe for the short-lived worker threads
// the bench harness spawns per cell.
//
// Memory-order note: guard entry publishes the pinned epoch with seq_cst and
// epoch bookkeeping is seq_cst throughout. Jiffy's snapshot-safety argument
// (DESIGN.md §5) leans on this total order: a reader whose guard began after
// an object was retired is guaranteed to observe every store the retiring
// thread made before the retire (in particular version stamps), so it never
// walks a revision chain into memory it is not protecting. Every atomic site
// below carries a `pairs:`/`relaxed:` annotation checked by
// tools/atomic_audit.py against the DESIGN.md §10 catalog.
//
// Beyond guards, this header tracks *versions*: a VersionTicket registers
// the TSC version a reader is pinned at (a snapshot, a cursor, one scan),
// and min_active_version() folds the registry into the oldest-active
// watermark the purge pass (DESIGN.md §9) compares death versions against.
// A ticket publishes the sentinel 0 ("reserving") before its owner reads
// the clock: a scanner that misses the ticket therefore ran before that
// clock read in the seq_cst order, so every death version it collected was
// stamped earlier still — globally monotonic TSC then guarantees the missed
// reader's version lies above them all.
//
// Static analysis (DESIGN.md §10): Guard and VersionTicket are Clang
// thread-safety capabilities. Internal entry points of the engine take them
// as annotated reference parameters; holding is established by
// assert_held()/assert_pinned() immediately after construction (or behind a
// class invariant that owns a live member token).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/analysis.h"
#include "common/prefetch.h"
#include "common/striped_counter.h"  // CachePadded, kCacheLineBytes
#include "obs/counters.h"
#include "obs/trace.h"

namespace jiffy::ebr {

namespace detail {

inline constexpr std::uint64_t kIdleEpoch = ~0ull;

// Pressure-valve cadence: with the epoch stuck and the limbo bucket past
// kLimboPressure items, retire_fn yields once per kValvePeriod retires. The
// cadence bounds the steady-state hoard at roughly 3x the period per thread
// (one period of growth per scheduler round, freed two epochs later) while
// keeping scheduling slices long enough that the cache-warmth lost to each
// context switch stays amortized. kLimboPressure keeps the valve dormant in
// same-epoch steady state, where collect() empties buckets near 128 items.
inline constexpr std::size_t kLimboPressure = 96;
inline constexpr std::size_t kValvePeriod = 64;

struct Retired {
  void* ptr;
  void (*deleter)(void*);
};

// Cacheline-aligned: each record's pinned/nest fields are written on every
// outermost guard entry/exit by exactly one thread; alignment keeps two
// records (small enough for the allocator to co-locate) from false-sharing
// each other's per-op stores, and keeps a record's hot fields off the line
// of whatever the allocator places after it. See DESIGN.md §14.
struct alignas(kCacheLineBytes) ThreadRec {
  // Epoch this thread is pinned at; kIdleEpoch when not inside a guard.
  std::atomic<std::uint64_t> pinned{kIdleEpoch};
  std::atomic<int> nest{0};
  std::atomic<bool> in_use{true};
  ThreadRec* next = nullptr;  // immutable after registration
  // Retired objects bucketed by (epoch % 3). Only the owning thread touches
  // these, and ownership hand-off goes through the in_use acquire/release.
  std::vector<Retired> limbo[3];
  std::uint64_t limbo_epoch[3] = {0, 0, 0};
  std::size_t retires_since_scan = 0;
  std::size_t retires_since_valve = 0;  // see the pressure valve in retire_fn
};

struct Global {
  // Padded apart: epoch is CASed by every try_advance while head is a
  // read-mostly registry root loaded by every epoch scan — sharing a line
  // would make the advance CAS invalidate every scanner's cached head.
  CachePadded<std::atomic<std::uint64_t>> epoch_pad;
  CachePadded<std::atomic<ThreadRec*>> head_pad;
  std::atomic<std::uint64_t>& epoch = epoch_pad.value;
  std::atomic<ThreadRec*>& head = head_pad.value;
  Global() {
    // relaxed: constructed once (function-local static) before any sharing.
    epoch.store(1, std::memory_order_relaxed);
  }
};

inline Global& global() {
  static Global g;
  return g;
}

inline void free_bucket(std::vector<Retired>& b) {
  // Drains run in bursts (hundreds of objects after an oversubscription
  // stall, DESIGN.md §14.3) and every deleter's first touch of its object is
  // a dependent cold miss. Prefetch a few objects ahead so the misses
  // overlap the deleter work instead of serializing behind it.
  constexpr std::size_t kAhead = 8;
  const std::size_t n = b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) prefetch_ro(b[i + kAhead].ptr);
    b[i].deleter(b[i].ptr);
  }
  b.clear();
}

// Advance the global epoch if every pinned thread has caught up with it.
// Returns the (possibly unchanged) current epoch.
inline std::uint64_t try_advance() {
  Global& g = global();
  const std::uint64_t e =
      g.epoch.load(std::memory_order_seq_cst);  // pairs: ebr-epoch
  for (ThreadRec* r =
           g.head.load(std::memory_order_acquire);  // pairs: registry-link
       r; r = r->next) {
    const std::uint64_t pinned =
        r->pinned.load(std::memory_order_seq_cst);  // pairs: ebr-pin
    if (pinned != kIdleEpoch && pinned != e) return e;
  }
  std::uint64_t expected = e;
  if (g.epoch.compare_exchange_strong(expected, e + 1,
                                      std::memory_order_seq_cst))  // pairs: ebr-epoch
    obs::trace_epoch(e + 1);
  return g.epoch.load(std::memory_order_seq_cst);  // pairs: ebr-epoch
}

inline ThreadRec* acquire_rec() {
  Global& g = global();
  for (ThreadRec* r =
           g.head.load(std::memory_order_acquire);  // pairs: registry-link
       r; r = r->next) {
    bool expected = false;
    // relaxed: racy pre-check only; the CAS below is the synchronizing op.
    if (!r->in_use.load(std::memory_order_relaxed) &&
        r->in_use.compare_exchange_strong(
            expected, true,
            std::memory_order_acq_rel))  // pairs: ebr-rec-recycle
      return r;
  }
  auto* r = new ThreadRec;
  ThreadRec* head = g.head.load(std::memory_order_acquire);  // pairs: registry-link
  do {
    r->next = head;
  } while (!g.head.compare_exchange_weak(
      head, r, std::memory_order_acq_rel,
      std::memory_order_acquire));  // pairs: registry-link
  return r;
}

struct ThreadHandle {
  ThreadRec* rec = nullptr;

  ThreadRec* get() {
    if (!rec) rec = acquire_rec();
    return rec;
  }

  ~ThreadHandle() {
    if (rec)
      rec->in_use.store(false,
                        std::memory_order_release);  // pairs: ebr-rec-recycle
  }
};

inline ThreadRec* my_rec() {
  thread_local ThreadHandle handle;
  return handle.get();
}

// Flush any bucket whose contents are two epochs stale.
inline void collect(ThreadRec* rec, std::uint64_t now) {
  for (int i = 0; i < 3; ++i) {
    if (!rec->limbo[i].empty() && rec->limbo_epoch[i] + 2 <= now)
      free_bucket(rec->limbo[i]);
  }
}

}  // namespace detail

// RAII epoch pin. Nestable; only the outermost guard publishes. A Guard is a
// Clang thread-safety capability (DESIGN.md §10): functions that dereference
// node/revision memory take `const Guard&` annotated JIFFY_REQUIRES_GUARD.
class JIFFY_CAPABILITY("ebr_guard") Guard {
 public:
  Guard() : rec_(detail::my_rec()) {
    // relaxed: nest is only ever touched by its owning thread.
    if (rec_->nest.fetch_add(1, std::memory_order_relaxed) == 0) {
      detail::Global& g = detail::global();
      // Publish the pin, then re-check: the epoch may have advanced between
      // the read and the store, in which case re-pin at the newer epoch.
      std::uint64_t e =
          g.epoch.load(std::memory_order_seq_cst);  // pairs: ebr-epoch
      for (;;) {
        rec_->pinned.store(e, std::memory_order_seq_cst);  // pairs: ebr-pin
        const std::uint64_t now =
            g.epoch.load(std::memory_order_seq_cst);  // pairs: ebr-epoch
        if (now == e) break;
        e = now;
      }
    }
  }

  ~Guard() {
    // relaxed: nest is only ever touched by its owning thread.
    if (rec_->nest.fetch_sub(1, std::memory_order_relaxed) == 1)
      rec_->pinned.store(detail::kIdleEpoch,
                         std::memory_order_seq_cst);  // pairs: ebr-pin
  }

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  // Tells the thread-safety analysis this guard is live. Call immediately
  // after construction, or from a method whose class invariant owns a live
  // member guard (Snapshot, SnapCursor). The constructor is the ground
  // truth; this is the trust boundary of the ASSERT_CAPABILITY pattern.
  void assert_held() const JIFFY_ASSERT_CAPABILITY(this) {}

 private:
  detail::ThreadRec* rec_;
};

// Hand `p` to the collector with an explicit deleter; it runs once no guard
// can reach the object. The deleter must be self-contained (it may run long
// after the retiring scope is gone).
inline void retire_fn(void* p, void (*deleter)(void*)) {
  using namespace detail;
  ThreadRec* rec = my_rec();
  Global& g = global();
  std::uint64_t e = g.epoch.load(std::memory_order_seq_cst);  // pairs: ebr-epoch
  auto& bucket = rec->limbo[e % 3];
  // A bucket is reused every third epoch; whatever is still in it is at
  // least three epochs old and safe to free now.
  if (!bucket.empty() && rec->limbo_epoch[e % 3] != e) free_bucket(bucket);
  rec->limbo_epoch[e % 3] = e;
  bucket.push_back({p, deleter});
  JIFFY_COUNT_MAX_LIMBO(static_cast<std::int64_t>(bucket.size()));

  if (++rec->retires_since_scan >= 64) {
    rec->retires_since_scan = 0;
    std::uint64_t now = try_advance();
    // Reclamation pressure valve (DESIGN.md §14): on an oversubscribed core
    // a descheduled peer is almost always pinned *inside* a guard, so the
    // epoch cannot advance for this thread's entire scheduling quantum and
    // its limbo would hoard every revision it retires — megabytes that go
    // cold in cache while each fresh revision allocation misses instead of
    // reusing the just-freed hot chunk (measured: the bucket peaks at ~64
    // objects with one thread but at thousands once threads > cores). Once
    // the bucket passes the threshold with the epoch stuck, donate the rest
    // of the quantum: the peer finishes its operation, re-pins at the
    // current epoch, and the retried advance lets collect() free the hoard.
    // With threads <= cores the epoch advances on its own and the valve
    // stays dormant; it is a scheduling hint only, never a wait, so
    // lock-freedom is unaffected.
    rec->retires_since_valve += 64;
    if (bucket.size() >= kLimboPressure && now == e &&
        rec->retires_since_valve >= kValvePeriod) {
      rec->retires_since_valve = 0;
      for (int tries = 0; tries < 8 && now == e; ++tries) {
        JIFFY_COUNT(valve_donations);
        std::this_thread::yield();
        now = try_advance();
      }
    }
    collect(rec, now);
  }
}

// Hand `p` to the collector; it is deleted once no guard can reach it.
template <class T>
void retire(T* p) {
  retire_fn(p, [](void* q) { delete static_cast<T*>(q); });
}

// Current global epoch. A guard active now is pinned at (at most) this
// value, so once the epoch has advanced by 2 past a reading, every guard
// that was active at that reading has ended — the drain condition the purge
// pass uses between unlinking and retiring shells.
inline std::uint64_t current_epoch() {
  return detail::global().epoch.load(
      std::memory_order_seq_cst);  // pairs: ebr-epoch
}

// Best-effort drain for quiescent moments (tests, shutdown): repeatedly
// advance and collect this thread's buckets. Objects parked on other
// threads' records stay until those threads retire again.
inline void quiesce() {
  using namespace detail;
  ThreadRec* rec = my_rec();
  for (int i = 0; i < 4; ++i) collect(rec, try_advance());
}

// ---- oldest-active-version tracking ---------------------------------------

namespace detail {

inline constexpr std::uint64_t kIdleVersion = ~0ull;

// Same lock-free registration/recycling pattern as ThreadRec, but per
// *ticket*, not per thread: one thread may hold several (a snapshot plus
// the cursors it handed out).
// Cacheline-aligned for the same reason as ThreadRec: a slot's v is stored
// on every ticket publish; unaligned, the 24-byte slots pack two-plus to a
// line and concurrent ticket holders would ping-pong it.
struct alignas(kCacheLineBytes) VersionSlot {
  std::atomic<std::uint64_t> v{kIdleVersion};
  std::atomic<bool> in_use{false};
  VersionSlot* next = nullptr;  // immutable after registration
};

struct VersionRegistry {
  std::atomic<VersionSlot*> head{nullptr};
};

inline VersionRegistry& version_registry() {
  static VersionRegistry r;
  return r;
}

inline VersionSlot* acquire_version_slot() {
  VersionRegistry& reg = version_registry();
  for (VersionSlot* s =
           reg.head.load(std::memory_order_acquire);  // pairs: registry-link
       s; s = s->next) {
    bool expected = false;
    // relaxed: racy pre-check only; the CAS below is the synchronizing op.
    if (!s->in_use.load(std::memory_order_relaxed) &&
        s->in_use.compare_exchange_strong(
            expected, true,
            std::memory_order_acq_rel))  // pairs: ebr-rec-recycle
      return s;
  }
  auto* s = new VersionSlot;
  // relaxed: the slot is thread-private until the head CAS publishes it.
  s->in_use.store(true, std::memory_order_relaxed);
  VersionSlot* head =
      reg.head.load(std::memory_order_acquire);  // pairs: registry-link
  do {
    s->next = head;
  } while (!reg.head.compare_exchange_weak(
      head, s, std::memory_order_acq_rel,
      std::memory_order_acquire));  // pairs: registry-link
  return s;
}

}  // namespace detail

// Registers a reader's pinned version for the lifetime of the ticket.
// Usage rule (the whole safety argument hangs on it): construct the ticket
// BEFORE reading the clock for the version it will publish — construction
// publishes the sentinel 0, which blocks the purge watermark until the real
// version lands. publish() may be called again (cursors that get re-pointed
// republish). A ticket is a Clang thread-safety capability: versioned-read
// entry points take `const VersionTicket&` annotated JIFFY_REQUIRES_TICKET.
class JIFFY_CAPABILITY("version_ticket") VersionTicket {
 public:
  VersionTicket() : slot_(detail::acquire_version_slot()) {
    slot_->v.store(0, std::memory_order_seq_cst);  // pairs: version-pin
  }

  ~VersionTicket() {
    slot_->v.store(detail::kIdleVersion,
                   std::memory_order_seq_cst);  // pairs: version-pin
    slot_->in_use.store(false,
                        std::memory_order_release);  // pairs: ebr-rec-recycle
  }

  VersionTicket(const VersionTicket&) = delete;
  VersionTicket& operator=(const VersionTicket&) = delete;

  void publish(std::uint64_t v) {
    slot_->v.store(v, std::memory_order_seq_cst);  // pairs: version-pin
  }

  // Tells the thread-safety analysis this ticket is live (see
  // Guard::assert_held; same trust boundary, same placement rules).
  void assert_pinned() const JIFFY_ASSERT_CAPABILITY(this) {}

 private:
  detail::VersionSlot* slot_;
};

// Oldest version any active ticket is pinned at. Returns ~0 when none are
// (everything stamped is then older than every reader), and 0 while some
// ticket is still mid-registration (the caller should treat that as "no
// reclamation this round"). A recycled slot can transiently show its old
// idle value between the in_use CAS and the new owner's sentinel store;
// ignoring it then is the "missed ticket" case the header comment argues
// safe: the owner's clock read happens after its sentinel store, so its
// version lands above every death version a concurrent scan collected.
inline std::uint64_t min_active_version() {
  std::uint64_t m = detail::kIdleVersion;
  for (detail::VersionSlot* s = detail::version_registry().head.load(
           std::memory_order_acquire);  // pairs: registry-link
       s; s = s->next) {
    // pairs: ebr-rec-recycle (seq_cst keeps the in_use/v reads in the same
    // total order as the ticket's sentinel-then-clock protocol)
    if (!s->in_use.load(std::memory_order_seq_cst)) continue;
    const std::uint64_t v =
        s->v.load(std::memory_order_seq_cst);  // pairs: version-pin
    if (v < m) m = v;
  }
  return m;
}

}  // namespace jiffy::ebr
