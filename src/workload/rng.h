// Per-thread PRNG and key-choice distributions for the benchmark harness.
//
// Rng is xorshift* seeded through splitmix64 (so consecutive small seeds give
// uncorrelated streams). KeyChooser implements uniform and Zipfian choice; the
// Zipfian generator is the stateless-per-draw YCSB formulation, so next_index
// is const and one chooser can be shared by every worker thread.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace jiffy {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B9ull)
      : state_(splitmix64(seed) | 1ull) {}

  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  // Unbiased-enough multiply-shift range reduction.
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  double next_double() {  // in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

// Chooses key indices in [0, space). Zipfian is the YCSB generator with
// theta (the paper uses 0.99): zeta-based inverse CDF, all per-draw state in
// the caller's Rng so the chooser itself is immutable after construction.
class KeyChooser {
 public:
  enum class Kind { Uniform, Zipfian };

  KeyChooser(Kind kind, std::uint64_t space, double theta = 0.99)
      : kind_(kind), space_(space), theta_(theta) {
    if (kind_ == Kind::Zipfian) {
      zetan_ = zeta(space_, theta_);
      zeta2_ = zeta(2, theta_);
      alpha_ = 1.0 / (1.0 - theta_);
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(space_), 1.0 - theta_)) /
             (1.0 - zeta2_ / zetan_);
    }
  }

  std::uint64_t space() const { return space_; }
  Kind kind() const { return kind_; }

  std::uint64_t next_index(Rng& rng) const {
    if (kind_ == Kind::Uniform) return rng.next_below(space_);
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    auto idx = static_cast<std::uint64_t>(
        static_cast<double>(space_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (idx >= space_) idx = space_ - 1;
    // Scramble so the hot head of the distribution is spread over the key
    // domain instead of clustered at the smallest keys (YCSB does the same).
    return splitmix64(idx) % space_;
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  Kind kind_;
  std::uint64_t space_;
  double theta_;
  double zetan_ = 0, zeta2_ = 0, alpha_ = 0, eta_ = 0;
};

}  // namespace jiffy
