// Key/value codecs for the benchmark kv shapes and the batch-op record.
//
// KeyCodec<K>::encode(i, space) maps a dense workload index i in [0, space)
// to a key, injectively and ORDER-PRESERVING (index order == key order):
// indices are spread evenly over the key domain on a fixed stride. Monotone
// encoding is load-bearing for the sequential batch modes — consecutive
// indices must produce adjacent keys so a b*_seq batch lands in one or a few
// fat nodes, which is the locality effect the paper's sequential-batch rows
// measure. Randomness comes from the index choosers (the harness preloads
// shuffled indices, KeyChooser scrambles the Zipf head), not the codec.
// ValueCodec<V>::make(i, r) builds a value from the index and a per-op
// nonce.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/fixed_bytes.h"
#include "workload/rng.h"

namespace jiffy {

namespace detail {
// Largest stride that keeps i * stride in a `bits`-wide domain for every
// i < space: evenly spaced, monotone, injective.
inline std::uint64_t key_stride(std::uint64_t space, unsigned bits) {
  assert(space > 0);
  const std::uint64_t domain_max =
      bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  assert(space - 1 <= domain_max);
  return space > 1 ? domain_max / (space - 1) : 1;
}
}  // namespace detail

template <class K>
struct KeyCodec;

template <>
struct KeyCodec<std::uint64_t> {
  static std::uint64_t encode(std::uint64_t i, std::uint64_t space) {
    return i * detail::key_stride(space, 64);
  }
};

template <>
struct KeyCodec<std::uint32_t> {
  static std::uint32_t encode(std::uint64_t i, std::uint64_t space) {
    return static_cast<std::uint32_t>(i * detail::key_stride(space, 32));
  }
};

template <std::size_t N>
struct KeyCodec<FixedBytes<N>> {
  static FixedBytes<N> encode(std::uint64_t i, std::uint64_t space) {
    constexpr unsigned bits = N >= 8 ? 64 : 8 * N;
    return FixedBytes<N>::from_u64(i * detail::key_stride(space, bits));
  }
};

template <class V>
struct ValueCodec;

template <>
struct ValueCodec<std::uint64_t> {
  static std::uint64_t make(std::uint64_t i, std::uint64_t nonce) {
    return splitmix64(i ^ (nonce << 1));
  }
};

template <std::size_t N>
struct ValueCodec<FixedBytes<N>> {
  static FixedBytes<N> make(std::uint64_t i, std::uint64_t nonce) {
    FixedBytes<N> v;
    std::uint64_t x = splitmix64(i ^ (nonce << 1));
    for (std::size_t b = 0; b < N; ++b) {
      if (b % 8 == 0) x = splitmix64(x);
      v.data[b] = static_cast<unsigned char>(x >> (8 * (b % 8)));
    }
    return v;
  }
};

// One operation of an atomic batch update (paper §3.4).
template <class K, class V>
struct BatchOp {
  enum class Kind : std::uint8_t { kPut, kRemove };

  Kind kind = Kind::kPut;
  K key{};
  V value{};

  static BatchOp put(K k, V v) {
    return BatchOp{Kind::kPut, std::move(k), std::move(v)};
  }
  static BatchOp remove(K k) { return BatchOp{Kind::kRemove, std::move(k), V{}}; }
};

// Typed builder for an atomic batch — the only currency the map APIs accept
// for multi-op updates (`Batch b; b.put(k, v); b.erase(k); map.apply(b)`).
// Ops are recorded in call order; the map sorts and deduplicates them (last
// wins per key) on apply and publishes the final list in the installed batch
// descriptor, so a stalled batch can in principle be completed by helpers.
template <class K, class V>
class Batch {
 public:
  Batch& put(K k, V v) {
    ops_.push_back(BatchOp<K, V>::put(std::move(k), std::move(v)));
    return *this;
  }

  Batch& erase(K k) {
    ops_.push_back(BatchOp<K, V>::remove(std::move(k)));
    return *this;
  }

  void reserve(std::size_t n) { ops_.reserve(n); }
  void clear() { ops_.clear(); }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  const std::vector<BatchOp<K, V>>& ops() const& { return ops_; }
  std::vector<BatchOp<K, V>> take() && { return std::move(ops_); }

 private:
  std::vector<BatchOp<K, V>> ops_;
};

}  // namespace jiffy
