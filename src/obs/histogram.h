// Log-linear ("HDR-style") latency histogram (ISSUE 10, DESIGN.md §15).
//
// Fixed-size, allocation-free histogram over the full uint64 value range,
// bucketed log-linearly: values below 2^kSubBits are exact; above that each
// power-of-two octave is split into 2^kSubBits linear sub-buckets, bounding
// the relative quantization error at 2^-kSubBits (3.125% with kSubBits=5 —
// the same scheme HdrHistogram and RocksDB's HistogramStat use). Values are
// raw ticks (TscClock reads in the harness); conversion to wall time happens
// at report time with a per-cell calibration, so record() stays one shift +
// one table update.
//
// Deliberately NOT thread-safe: each harness worker owns a private instance
// (plain uint64 counts, no atomics, no false sharing) and the coordinator
// merge()s them after join — join provides all the ordering needed. The
// footprint (~15 KB) lives on the worker's stack or in its per-thread slot,
// never on a shared cacheline.
//
// tests/test_obs.cpp pins bucket math and percentiles against a
// sorted-vector oracle.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace jiffy::obs {

class LatHistogram {
 public:
  // 32 linear sub-buckets per octave: <= 3.125% relative error, 1920
  // buckets, 15 KB per instance. Raising kSubBits doubles both.
  static constexpr unsigned kSubBits = 5;
  static constexpr unsigned kSubCount = 1u << kSubBits;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(64 - kSubBits + 1) * kSubCount;

  void record(std::uint64_t v) {
    ++counts_[index_of(v)];
    ++total_;
    if (v > max_) max_ = v;
  }

  void merge(const LatHistogram& o) {
    for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    if (o.max_ > max_) max_ = o.max_;
  }

  std::uint64_t count() const { return total_; }
  std::uint64_t max() const { return max_; }

  // Smallest recorded-bucket upper edge covering fraction p (in [0,100]) of
  // the samples. Returns the bucket's highest representable value, so the
  // result over-reports the exact order statistic by at most one bucket
  // width (<= 3.125% relative), never under-reports it.
  std::uint64_t value_at_percentile(double p) const {
    if (total_ == 0) return 0;
    if (p < 0) p = 0;
    if (p > 100) p = 100;
    const double want = p / 100.0 * static_cast<double>(total_);
    std::uint64_t target = static_cast<std::uint64_t>(want);
    if (static_cast<double>(target) < want) ++target;
    if (target == 0) target = 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cum += counts_[i];
      if (cum >= target) {
        const std::uint64_t hi = upper_edge(i);
        return hi < max_ ? hi : max_;  // clamp the top bucket to the max seen
      }
    }
    return max_;
  }

  // Bucket mapping, exposed for the oracle test.
  static std::size_t index_of(std::uint64_t v) {
    if (v < kSubCount) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;
    const std::size_t block = msb - kSubBits + 1;
    return block * kSubCount +
           static_cast<std::size_t>((v >> shift) & (kSubCount - 1));
  }

  // Highest value mapping to bucket i (inclusive upper edge).
  static std::uint64_t upper_edge(std::size_t i) {
    if (i < kSubCount) return static_cast<std::uint64_t>(i);
    const std::size_t block = i / kSubCount;
    const std::size_t sub = i % kSubCount;
    const unsigned msb = static_cast<unsigned>(block) + kSubBits - 1;
    const unsigned shift = msb - kSubBits;
    const std::uint64_t base = std::uint64_t{1} << msb;
    return base + ((static_cast<std::uint64_t>(sub) + 1) << shift) - 1;
  }

 private:
  std::uint64_t counts_[kBucketCount] = {};
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace jiffy::obs
