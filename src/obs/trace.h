// Per-thread binary event-trace ring for protocol forensics (ISSUE 10,
// DESIGN.md §15).
//
// Each tracing thread owns a fixed-size ring of 32-byte timestamped events:
// schedule-point hits, ebr retire calls (pointer + allocation size + unlink
// tag), and global epoch advances. The ring is the allocation-order
// -deterministic "logged retire stream" the ROADMAP names as the next lever
// on the seed heap corruption: with tracing on, a crash leaves the last N
// protocol events of every thread in memory, and a clean exit dumps them to
// a binary file tools/traceview.py decodes.
//
// Cost model:
//   * Compiled out entirely under JIFFY_OBS=0 (hooks are empty inlines).
//   * Compiled in but DISABLED (the default): each hook is one relaxed load
//     of a global flag plus an untaken branch.
//   * Enabled (trace_enable(true), or the harness/tests' --trace flag /
//     JIFFY_TRACE env): one TSC read plus one 32-byte store into a ring only
//     the owning thread writes. No shared-cacheline traffic per event.
//
// Ring ownership follows the EBR ThreadRec pattern (src/ebr/ebr.h): rings
// are registered once on a global lock-free list and recycled through an
// in_use flag at thread exit, so the footprint is bounded by the peak thread
// count even though the bench harness spawns fresh workers per cell. Ring
// contents (head, events) are plain data written by the owner only;
// hand-off to a recycling owner goes through the in_use acquire/release
// edge, and trace_dump() must only run once tracing threads are joined (the
// join provides its ordering) — the stress/test drivers dump after join.
//
// Binary format (little-endian, tools/traceview.py):
//   header: char magic[8] = "JFTRACE1", u32 version, u32 event_size,
//           u64 event_count, u64 ticks_per_sec_hint (0 = unknown)
//   events: event_count records of TraceEvent (32 bytes each), grouped by
//           ring, oldest-first within a ring; ts orders within one tid only.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/striped_counter.h"  // kCacheLineBytes, thread_shard_id
#include "tsc/clock.h"

#ifndef JIFFY_OBS
#define JIFFY_OBS 1
#endif

namespace jiffy::obs {

// Event kinds and retire sub-tags. Values are part of the dump format —
// append-only; tools/traceview.py mirrors both tables.
enum class TraceKind : std::uint16_t {
  kSchedPoint = 1,  // tag = sched::Point index, a = b = 0
  kRetire = 2,      // a = object pointer, b = allocation bytes, tag below
  kEpochAdvance = 3  // a = new epoch value
};

enum class RetireTag : std::uint16_t {
  kRevUnref = 1,           // revision refcount hit zero -> ebr::retire_fn
  kRevUnrefImmediate = 2,  // unpublished revision disposed without EBR
  kPurgeShell = 3          // purge pass retiring an unlinked node shell
};

struct TraceEvent {
  std::uint64_t ts;   // TscClock ticks (monotone per thread)
  std::uint64_t a;    // kind-specific (pointer / epoch)
  std::uint64_t b;    // kind-specific (bytes)
  std::uint16_t kind;
  std::uint16_t tag;
  std::uint32_t tid;  // process-global dense thread id (thread_shard_id)
};
static_assert(sizeof(TraceEvent) == 32, "dump format is 32-byte records");

#if JIFFY_OBS

namespace trace_detail {

// Ring capacity in events; env JIFFY_TRACE_EVENTS overrides (clamped to
// [64, 4M]). Read once at first ring construction — set the env before the
// first traced event (tests setenv() up front).
inline std::size_t ring_capacity() {
  static const std::size_t cap = [] {
    std::size_t n = 16384;  // 512 KiB per thread at 32 B/event
    if (const char* s = std::getenv("JIFFY_TRACE_EVENTS")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(s, &end, 10);
      if (end != s && v != 0) n = static_cast<std::size_t>(v);
    }
    if (n < 64) n = 64;
    if (n > (std::size_t{1} << 22)) n = std::size_t{1} << 22;
    return n;
  }();
  return cap;
}

// Cacheline-aligned for the same reason as ebr::ThreadRec: head is written
// on every traced event by exactly one thread; alignment keeps co-located
// rings from false-sharing it.
struct alignas(kCacheLineBytes) TraceRing {
  std::atomic<bool> in_use{true};
  TraceRing* next = nullptr;  // immutable after registration
  std::uint64_t head = 0;     // events ever appended (owner-only, plain)
  std::vector<TraceEvent> ev;
  TraceRing() : ev(ring_capacity()) {}
};

struct TraceGlobal {
  // Padded apart: enabled is loaded by every hook on every engine op while
  // head is touched only at thread birth/death and dump time.
  CachePadded<std::atomic<int>> enabled_pad;
  CachePadded<std::atomic<TraceRing*>> head_pad;
  std::atomic<int>& enabled = enabled_pad.value;
  std::atomic<TraceRing*>& head = head_pad.value;
};

inline TraceGlobal& global() {
  static TraceGlobal g;
  return g;
}

inline TraceRing* acquire_ring() {
  TraceGlobal& g = global();
  for (TraceRing* r =
           g.head.load(std::memory_order_acquire);  // pairs: obs-ring-link
       r; r = r->next) {
    bool expected = false;
    // relaxed: racy pre-check only; the CAS below is the synchronizing op.
    if (!r->in_use.load(std::memory_order_relaxed) &&
        r->in_use.compare_exchange_strong(
            expected, true,
            std::memory_order_acq_rel))  // pairs: obs-ring-recycle
      return r;
  }
  auto* r = new TraceRing;
  TraceRing* head = g.head.load(std::memory_order_acquire);  // pairs: obs-ring-link
  do {
    r->next = head;
  } while (!g.head.compare_exchange_weak(
      head, r, std::memory_order_acq_rel,
      std::memory_order_acquire));  // pairs: obs-ring-link
  return r;
}

struct RingHandle {
  TraceRing* ring = nullptr;

  TraceRing* get() {
    if (!ring) ring = acquire_ring();
    return ring;
  }

  ~RingHandle() {
    if (ring)
      ring->in_use.store(false,
                         std::memory_order_release);  // pairs: obs-ring-recycle
  }
};

inline TraceRing* my_ring() {
  thread_local RingHandle handle;
  return handle.get();
}

inline void emit(TraceKind kind, std::uint16_t tag, std::uint64_t a,
                 std::uint64_t b) {
  TraceRing* r = my_ring();
  TraceEvent& e = r->ev[r->head % r->ev.size()];
  e.ts = TscClock{}.read();
  e.a = a;
  e.b = b;
  e.kind = static_cast<std::uint16_t>(kind);
  e.tag = tag;
  e.tid = jiffy::detail::thread_shard_id();
  ++r->head;
}

}  // namespace trace_detail

inline bool trace_enabled() {
  // relaxed: advisory gate. Threads started after trace_enable(true) see it
  // via thread creation's ordering; a stale read at the flip merely drops or
  // adds a borderline event — the ring is a diagnostic, not publication.
  return trace_detail::global().enabled.load(std::memory_order_relaxed) != 0;
}

inline void trace_enable(bool on) {
  // relaxed: advisory gate (see trace_enabled).
  trace_detail::global().enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

inline void trace_sched(unsigned point) {
  if (trace_enabled())
    trace_detail::emit(TraceKind::kSchedPoint,
                       static_cast<std::uint16_t>(point), 0, 0);
}

inline void trace_retire(const void* p, std::uint64_t bytes, RetireTag tag) {
  if (trace_enabled())
    trace_detail::emit(TraceKind::kRetire, static_cast<std::uint16_t>(tag),
                       reinterpret_cast<std::uint64_t>(p), bytes);
}

inline void trace_epoch(std::uint64_t new_epoch) {
  if (trace_enabled())
    trace_detail::emit(TraceKind::kEpochAdvance, 0, new_epoch, 0);
}

// Dump every ring's retained events to `path`. Call only after the traced
// threads are joined (the join orders their plain ring writes); rings of
// exited threads are ordered by the in_use release/acquire edge below.
// Returns the number of events written, 0 on open failure (errno is left
// set) or when nothing was traced.
inline std::uint64_t trace_dump(const char* path) {
  using trace_detail::TraceRing;
  TraceRing* head = trace_detail::global().head.load(
      std::memory_order_acquire);  // pairs: obs-ring-link
  std::uint64_t total = 0;
  for (TraceRing* r = head; r; r = r->next) {
    // pairs: obs-ring-recycle (value unused: the acquire synchronizes with
    // an exited owner's release so the plain head/ev reads below are ordered)
    (void)r->in_use.load(std::memory_order_acquire);
    total += r->head < r->ev.size() ? r->head : r->ev.size();
  }
  std::FILE* f = std::fopen(path, "wb");
  if (!f) return 0;
  const char magic[8] = {'J', 'F', 'T', 'R', 'A', 'C', 'E', '1'};
  const std::uint32_t version = 1;
  const std::uint32_t event_size = sizeof(TraceEvent);
  const std::uint64_t ticks_hint = 0;
  std::fwrite(magic, 1, 8, f);
  std::fwrite(&version, sizeof version, 1, f);
  std::fwrite(&event_size, sizeof event_size, 1, f);
  std::fwrite(&total, sizeof total, 1, f);
  std::fwrite(&ticks_hint, sizeof ticks_hint, 1, f);
  for (TraceRing* r = head; r; r = r->next) {
    const std::size_t cap = r->ev.size();
    if (r->head <= cap) {
      std::fwrite(r->ev.data(), sizeof(TraceEvent), r->head, f);
    } else {
      const std::size_t split = r->head % cap;  // oldest retained event
      std::fwrite(r->ev.data() + split, sizeof(TraceEvent), cap - split, f);
      std::fwrite(r->ev.data(), sizeof(TraceEvent), split, f);
    }
  }
  std::fclose(f);
  return total;
}

#else  // !JIFFY_OBS

inline bool trace_enabled() { return false; }
inline void trace_enable(bool) {}
inline void trace_sched(unsigned) {}
inline void trace_retire(const void*, std::uint64_t, RetireTag) {}
inline void trace_epoch(std::uint64_t) {}
inline std::uint64_t trace_dump(const char*) { return 0; }

#endif  // JIFFY_OBS

}  // namespace jiffy::obs
