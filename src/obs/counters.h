// Always-on engine event counters (ISSUE 10, DESIGN.md §15).
//
// A fixed compile-time registry of named process-global event counters the
// engine bumps at protocol-interesting sites: CAS install losses, help
// stamps, batch-replay group claims/duplications, purge sweeps, EBR valve
// donations, block-cache hits/misses, splits and merges — plus one striped
// max-gauge (limbo_peak) tracking the deepest EBR limbo bucket ever seen.
//
// Design constraints (same budget DESIGN.md §14 set for the engine itself):
//
//   * Zero shared-cacheline writes on the fast path. Every counter is a
//     StripedCounter over kCounterShards cacheline-aligned slots indexed by
//     the process-global thread shard id, so a bump is one relaxed RMW on a
//     line only the calling thread (modulo shard collisions) touches.
//   * Counters are statistics, never publication: nothing is ordered
//     through them and every reader (the harness MetricsSnapshot, tests
//     after join) is ordered by a stronger external edge (thread join).
//     This is the DESIGN.md §10 justified-relaxed "sharded statistic" class.
//   * JIFFY_OBS=0 compiles the whole layer to nothing: JIFFY_COUNT expands
//     to (void)0 and snapshot() returns zeros, so the obs-off twin benches
//     (BENCH_RESULTS/README overhead table) measure the true
//     zero-instrumentation baseline.
//
// Usage from engine code:
//
//   JIFFY_COUNT(cas_install_lost);        // bump by 1
//   JIFFY_COUNT_MAX_LIMBO(bucket_size);   // raise the limbo max-gauge
//
// The harness snapshots before/after each bench cell and serializes the
// delta to JSON under --metrics=<file> (schema: jiffy-metrics-v1).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/striped_counter.h"

// Observability master switch. Default ON — the counters are cheap enough
// to ship enabled (the acceptance gate pins fig6 a_update within 3% of the
// obs-off twin). Define JIFFY_OBS=0 to compile the layer out entirely.
#ifndef JIFFY_OBS
#define JIFFY_OBS 1
#endif

namespace jiffy::obs {

// Counter registry. Enumerators are deliberately snake_case (against the
// repo's kCamel enum style): the identifier IS the schema name — it appears
// verbatim in JIFFY_COUNT() call sites, kEventNames, the metrics JSON, and
// tools/check_scaling.py. Append-only; renames are schema changes.
enum class Ev : unsigned {
  cas_install_lost = 0,     // put/erase lost a head-revision install CAS
  help_stamp,               // helped stamp another writer's pending version
  replay_group_claimed,     // batch replay: this thread's group install won
  replay_group_duplicated,  // batch replay: rebuilt a group a rival installed
  purge_sweeps,             // cooperative purge passes started
  valve_donations,          // EBR pressure-valve yield donations
  block_cache_hit,          // thread block cache served an allocation
  block_cache_miss,         // cacheable size fell through to ::operator new
  split,                    // revision split committed
  merge,                    // node merge committed
  kCount
};

inline constexpr unsigned kEventCount = static_cast<unsigned>(Ev::kCount);

inline constexpr const char* kEventNames[kEventCount] = {
    "cas_install_lost", "help_stamp",       "replay_group_claimed",
    "replay_group_duplicated", "purge_sweeps", "valve_donations",
    "block_cache_hit",  "block_cache_miss", "split",
    "merge"};

// One extra striped *max* gauge (not a sum): deepest EBR limbo bucket
// observed by any thread. Kept out of Ev because its merge operator is max,
// not +, so snapshots carry it as a high-water mark.
inline constexpr const char* kLimboPeakName = "limbo_peak";

#if JIFFY_OBS

namespace detail {

// A max-gauge striped like StripedCounter: raise() lifts only the caller's
// slot, read() takes the max over slots. Monotone per slot, so the sweep is
// exact once writers are quiescent (same contract as StripedCounter::read).
template <std::size_t Shards = kCounterShards>
class StripedMax {
  static_assert(Shards != 0 && (Shards & (Shards - 1)) == 0,
                "Shards must be a power of two for the mask index");

 public:
  void raise(std::int64_t v) {
    std::atomic<std::int64_t>& s =
        slots_[jiffy::detail::thread_shard_id() & (Shards - 1)].v;
    // relaxed: sharded statistic (DESIGN.md §10); the gauge publishes no
    // payload and readers are ordered by thread join. The CAS loop reloads
    // its expected value through the failure writeback.
    std::int64_t cur = s.load(std::memory_order_relaxed);
    while (cur < v && !s.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {  // relaxed: stat max
    }
  }

  std::int64_t read() const {
    std::int64_t m = 0;
    for (const Slot& s : slots_)
      // relaxed: sharded statistic readout; approximate while writers run,
      // exact after join (see class comment).
      if (std::int64_t v = s.v.load(std::memory_order_relaxed); v > m) m = v;
    return m;
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::int64_t> v{0};
  };
  Slot slots_[Shards];
};

struct Registry {
  StripedCounter<kCounterShards> events[kEventCount];
  StripedMax<kCounterShards> limbo_peak;
};

inline Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace detail

inline void count(Ev e, std::int64_t delta = 1) {
  detail::registry().events[static_cast<unsigned>(e)].add(delta);
}

inline void limbo_peak_raise(std::int64_t v) {
  detail::registry().limbo_peak.raise(v);
}

#else  // !JIFFY_OBS

inline void count(Ev, std::int64_t = 1) {}
inline void limbo_peak_raise(std::int64_t) {}

#endif  // JIFFY_OBS

// Point-in-time aggregate of every counter plus the limbo-peak gauge.
// operator- yields the per-window delta the harness attributes to one bench
// cell (cells run sequentially, so process-global deltas are exact). Note
// limbo_peak is a high-water mark, not a sum: its "delta" is the end-window
// absolute peak, which dominates the start-window one.
struct MetricsSnapshot {
  std::array<std::int64_t, kEventCount> events{};
  std::int64_t limbo_peak = 0;

  MetricsSnapshot operator-(const MetricsSnapshot& base) const {
    MetricsSnapshot d;
    for (unsigned i = 0; i < kEventCount; ++i)
      d.events[i] = events[i] - base.events[i];
    d.limbo_peak = limbo_peak;  // high-water mark: absolute, not differenced
    return d;
  }

  std::int64_t operator[](Ev e) const {
    return events[static_cast<unsigned>(e)];
  }
};

inline MetricsSnapshot snapshot() {
  MetricsSnapshot s;
#if JIFFY_OBS
  for (unsigned i = 0; i < kEventCount; ++i)
    s.events[i] = detail::registry().events[i].read();
  s.limbo_peak = detail::registry().limbo_peak.read();
#endif
  return s;
}

}  // namespace jiffy::obs

// Engine-side bump macros. Expand to nothing under JIFFY_OBS=0 so hot paths
// carry literally zero instrumentation in the obs-off configuration.
#if JIFFY_OBS
#define JIFFY_COUNT(name_) ::jiffy::obs::count(::jiffy::obs::Ev::name_)
#define JIFFY_COUNT_N(name_, n_) \
  ::jiffy::obs::count(::jiffy::obs::Ev::name_, (n_))
#define JIFFY_COUNT_MAX_LIMBO(v_) ::jiffy::obs::limbo_peak_raise((v_))
#else
#define JIFFY_COUNT(name_) ((void)0)
#define JIFFY_COUNT_N(name_, n_) ((void)0)
#define JIFFY_COUNT_MAX_LIMBO(v_) ((void)0)
#endif
