// Thread-local LIFO cache of raw allocation blocks for the revision churn
// path (DESIGN.md §14.3).
//
// Every update builds a new revision and retires the old one, so the engine's
// dominant malloc/free traffic is same-sized blocks cycling at op rate. Under
// EBR the free happens two epochs after the allocation — long enough, on an
// oversubscribed box, for the allocator to have migrated the chunk out of its
// fast bins (and, cross-thread, between arenas), so each rebuild touches cold
// memory. Recycling blocks through a small per-thread LIFO hands the *most
// recently freed* block straight back to the next build: no allocator
// metadata work, no arena hops, and the best chance the lines are still warm.
//
// Size classes are a 256-byte grid up to 16 KB; bigger blocks bypass the
// cache entirely. The cache holds at most kMaxCachedBytes per thread and
// frees everything at thread exit. Under ASan/TSan the cache compiles to the
// plain allocator so use-after-free and race detection keep their precision
// (a recycled block would otherwise hide UAF from ASan's quarantine);
// JIFFY_NO_BLOCK_CACHE=1 in the environment disables it at runtime for
// allocator-level debugging (e.g. MALLOC_CHECK_ hunts, see ROADMAP).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

#include "common/prefetch.h"
#include "obs/counters.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define JIFFY_BLOCK_CACHE_ENABLED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define JIFFY_BLOCK_CACHE_ENABLED 0
#else
#define JIFFY_BLOCK_CACHE_ENABLED 1
#endif
#else
#define JIFFY_BLOCK_CACHE_ENABLED 1
#endif

namespace jiffy {

class ThreadBlockCache {
 public:
  static constexpr std::size_t kGranularity = 256;
  static constexpr std::size_t kMaxBlockBytes = 16 * 1024;
  static constexpr std::size_t kClasses = kMaxBlockBytes / kGranularity;
  static constexpr std::size_t kMaxCachedBytes = 64 * 1024;

  // Size the allocation will actually get: rounded up to its class when the
  // cache may serve it, untouched when it bypasses. Callers must free with
  // the same value they allocated with.
  static std::size_t usable_size(std::size_t bytes) {
    if (!enabled() || bytes > kMaxBlockBytes) return bytes;
    return (bytes + kGranularity - 1) & ~(kGranularity - 1);
  }

  // `bytes` must come from usable_size().
  static void* allocate(std::size_t bytes) {
    if (enabled() && bytes <= kMaxBlockBytes) {
      ThreadBlockCache& c = mine();
      const std::size_t idx = bytes / kGranularity - 1;
      if (FreeBlock* b = c.heads_[idx]) {
        c.heads_[idx] = b->next;
        c.cached_bytes_ -= bytes;
        // Foresight for the *next* build from this class: blocks that sat in
        // EBR limbo for a grace period come back cold, so start pulling the
        // successor now — the caller's whole build runs while it arrives,
        // and the write-intent hint skips the RFO when it is finally popped.
        if (c.heads_[idx])
          prefetch_w_block(c.heads_[idx],
                           static_cast<unsigned>(bytes < 512 ? bytes : 512));
        JIFFY_COUNT(block_cache_hit);
        return b;
      }
      JIFFY_COUNT(block_cache_miss);  // cacheable size, empty class list
    }
    return ::operator new(bytes);
  }

  // `bytes` must be the usable_size() the block was allocated with.
  static void deallocate(void* p, std::size_t bytes) {
    if (enabled() && bytes <= kMaxBlockBytes) {
      ThreadBlockCache& c = mine();
      if (c.cached_bytes_ + bytes <= kMaxCachedBytes) {
        const std::size_t idx = bytes / kGranularity - 1;
        auto* b = static_cast<FreeBlock*>(p);
        b->next = c.heads_[idx];
        c.heads_[idx] = b;
        c.cached_bytes_ += bytes;
        return;
      }
    }
    ::operator delete(p);
  }

  ~ThreadBlockCache() {
    for (FreeBlock*& head : heads_) {
      while (head) {
        FreeBlock* b = head;
        head = b->next;
        ::operator delete(b);
      }
    }
    cached_bytes_ = 0;
  }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };
  static_assert(kGranularity >= sizeof(FreeBlock),
                "free-list link must fit in the smallest class");

  static bool enabled() {
#if JIFFY_BLOCK_CACHE_ENABLED
    static const bool on = std::getenv("JIFFY_NO_BLOCK_CACHE") == nullptr;
    return on;
#else
    return false;
#endif
  }

  static ThreadBlockCache& mine() {
    thread_local ThreadBlockCache cache;
    return cache;
  }

  FreeBlock* heads_[kClasses] = {};
  std::size_t cached_bytes_ = 0;
};

}  // namespace jiffy
