// Contention-sharded counters and cacheline hygiene primitives.
//
// The fig sweeps in BENCH_RESULTS/ showed the engine scaling *backwards*
// with threads; the shared culprits were single hot atomics written on every
// operation (JiffyMap::size_, the autoscaler tallies, the harness counter
// block) sharing cachelines with each other and with read-mostly state.
// This header provides the two building blocks the fix is made of:
//
//   * CachePadded<T> — a value alone on its own destructive-interference
//     cacheline. Placing two of them next to each other *guarantees* the
//     contained atomics never false-share (alignas pads the tail too, since
//     sizeof is always a multiple of alignof). The layout contract is
//     static_asserted here and exercised by tests/test_striped_counter.cpp.
//
//   * StripedCounter<Shards> — a signed counter striped over Shards
//     cacheline-aligned slots, indexed by a cheap per-thread shard id. add()
//     touches only the caller's slot (no cross-core coherence traffic on the
//     fast path; on a collision two threads share a slot, which costs
//     contention but never correctness). read() aggregates lazily over the
//     slots: every delta lands in exactly one fetch_add, so the sum over all
//     slots is exact once writers are quiescent, and transiently off by at
//     most the ops in flight during the sweep — the same contract
//     JiffyMap::approx_size() documents.
//
// Memory-order note: all slot traffic is relaxed on purpose. The counters
// are statistics — nothing is published *through* them, and every consumer
// (approx_size, the autoscaler refresh, the harness post-join readout)
// either tolerates approximate values or is ordered by a stronger external
// edge (thread join, the purge flag). See DESIGN.md §10 justified-relaxed
// classes and §14 for the fast-path contention budget this enforces.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace jiffy {

// Destructive interference distance. std::hardware_destructive_interference_
// size exists but is not usable in headers compiled into differently-tuned
// TUs (GCC warns -Winterference-size for exactly that reason); 64 bytes is
// correct for every x86-64 and most AArch64 parts this runs on, and padding
// to 128 would double the striped-slot footprint for no measured gain.
inline constexpr std::size_t kCacheLineBytes = 64;

// A T alone on its own cacheline: alignas rounds sizeof up to the alignment,
// so consecutive CachePadded members (or array elements) can never share a
// line. Keep T trivially small (an atomic, a pointer pair); the point is the
// padding, not storage.
template <class T>
struct alignas(kCacheLineBytes) CachePadded {
  T value{};
};

static_assert(sizeof(CachePadded<std::atomic<std::uint64_t>>) ==
                  kCacheLineBytes,
              "CachePadded must occupy exactly one cacheline for small T");
static_assert(alignof(CachePadded<std::atomic<bool>>) == kCacheLineBytes,
              "CachePadded alignment is the false-sharing guarantee");

namespace detail {

// Dense per-thread shard id: the first Shards distinct threads get distinct
// slots, later ones wrap. Ids are process-global (one sequence shared by
// every StripedCounter) so a thread hits the same slot index in every
// counter — one line per counter stays resident in its cache.
inline unsigned thread_shard_id() {
  static std::atomic<unsigned> next{0};
  // relaxed: id allocation only needs uniqueness, which fetch_add gives at
  // any order; nothing is published through the ticket value.
  thread_local const unsigned id =
      next.fetch_add(1u, std::memory_order_relaxed);
  return id;
}

}  // namespace detail

// A signed counter sharded over cacheline-aligned slots. Exact under
// concurrent add() (every delta is one atomic RMW on one slot); read() is an
// unsynchronized sweep and therefore approximate while writers run —
// documented slack: the ops in flight during the sweep.
template <std::size_t Shards = 64>
class StripedCounter {
  static_assert(Shards != 0 && (Shards & (Shards - 1)) == 0,
                "Shards must be a power of two for the mask index");

 public:
  void add(std::int64_t delta) {
    // relaxed: sharded statistic; only per-slot totals matter and no payload
    // is published through the counter (see header note).
    slot().fetch_add(delta, std::memory_order_relaxed);
  }

  void increment() { add(1); }
  void decrement() { add(-1); }

  // Lazy aggregate over the slots. Exact when writers are quiescent;
  // otherwise off by at most the ops in flight during the sweep.
  std::int64_t read() const {
    std::int64_t sum = 0;
    for (const Slot& s : slots_)
      // relaxed: sharded statistic readout; the sum is approximate by
      // contract while writers run (see class comment).
      sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  // Harvest-and-reset for windowed consumers (the autoscaler EMA refresh):
  // returns the sum of all slots while zeroing them. Deltas racing the sweep
  // land in whichever window reads their slot next — never lost, never
  // double-counted (exchange takes each value exactly once).
  std::int64_t drain() {
    std::int64_t sum = 0;
    for (Slot& s : slots_)
      // relaxed: windowed harvest; exchange moves each slot's total into
      // exactly one window, and windows need no cross-slot ordering.
      sum += s.v.exchange(0, std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::int64_t> v{0};
  };
  static_assert(sizeof(Slot) == kCacheLineBytes,
                "one slot per cacheline is the whole point of striping");

  std::atomic<std::int64_t>& slot() {
    return slots_[detail::thread_shard_id() & (Shards - 1)].v;
  }

  Slot slots_[Shards];
};

// Shard count for the engine's hot counters: wide enough that the benchmark
// grids (<= 96 threads, almost always <= 16) rarely collide, small enough
// that a sweep stays a few KB.
inline constexpr std::size_t kCounterShards = 64;

}  // namespace jiffy
