// Fixed-width byte-string keys and values for the two kv shapes of the paper
// (§4.1): 4 B keys / 4 B values (Figure 6/9/10, the shape KiWi supports) and
// 16 B keys / 100 B values (Figure 5/7/8). Comparison is lexicographic on the
// raw bytes, so encoding integers big-endian preserves numeric order.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>

namespace jiffy {

template <std::size_t N>
struct FixedBytes {
  std::array<unsigned char, N> data{};

  static constexpr std::size_t size() { return N; }

  // Big-endian encode of the low min(N,8) bytes of `v`; upper bytes zero.
  static FixedBytes from_u64(std::uint64_t v) {
    FixedBytes b;
    constexpr std::size_t w = N < 8 ? N : 8;
    for (std::size_t i = 0; i < w; ++i)
      b.data[N - 1 - i] = static_cast<unsigned char>(v >> (8 * i));
    return b;
  }

  std::uint64_t to_u64() const {
    constexpr std::size_t w = N < 8 ? N : 8;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < w; ++i)
      v |= static_cast<std::uint64_t>(data[N - 1 - i]) << (8 * i);
    return v;
  }

  friend bool operator<(const FixedBytes& a, const FixedBytes& b) {
    return std::memcmp(a.data.data(), b.data.data(), N) < 0;
  }
  friend bool operator==(const FixedBytes& a, const FixedBytes& b) {
    return std::memcmp(a.data.data(), b.data.data(), N) == 0;
  }
  friend bool operator!=(const FixedBytes& a, const FixedBytes& b) {
    return !(a == b);
  }
};

using Key16 = FixedBytes<16>;
using Value100 = FixedBytes<100>;

}  // namespace jiffy

// FNV-1a over the bytes; JiffyMap's default Hash parameter is std::hash<K>.
template <std::size_t N>
struct std::hash<jiffy::FixedBytes<N>> {
  std::size_t operator()(const jiffy::FixedBytes<N>& b) const noexcept {
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : b.data) {
      h ^= c;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};
