// Static-analysis attribute layer: Clang thread-safety-analysis capabilities
// for the EBR discipline (DESIGN.md §10).
//
// Jiffy's memory safety hangs on two conventions the compiler normally never
// checks: every node/revision dereference happens under a live ebr::Guard,
// and every versioned read happens while an ebr::VersionTicket pins its
// version against the purge watermark. This header turns both conventions
// into Clang capabilities so a `-Wthread-safety -Werror=thread-safety` build
// rejects any internal entry point reached without them:
//
//   * ebr::Guard and ebr::VersionTicket are JIFFY_CAPABILITY classes.
//   * Internal entry points take the guard (and, for versioned reads, the
//     ticket) as an explicit reference parameter annotated
//     JIFFY_REQUIRES_GUARD(g) / JIFFY_REQUIRES_TICKET(t) — you cannot even
//     name the function without a token, and the analysis additionally
//     proves the token is *held* on every path.
//   * Holding is established by Guard::assert_held() / VersionTicket::
//     assert_pinned() (the ASSERT_CAPABILITY pattern, like
//     Mutex::AssertHeld): the RAII constructor is the ground truth and the
//     assert is placed immediately after construction, or at the top of
//     methods of classes whose invariant owns a live member token
//     (Snapshot, SnapCursor, Range).
//
// The macros are no-ops on non-Clang compilers (GCC builds them out
// entirely), so the annotations cost nothing in the tier-1 toolchain and are
// enforced by the clang lint job (`-Wthread-safety`, see .github/workflows
// and tools/README.md).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define JIFFY_TSA_HAS(x) __has_attribute(x)
#else
#define JIFFY_TSA_HAS(x) 0
#endif

#if JIFFY_TSA_HAS(capability)
#define JIFFY_TSA(x) __attribute__((x))
#else
#define JIFFY_TSA(x)
#endif

// A class whose objects are capabilities ("mutex", "ebr_guard", ...).
#define JIFFY_CAPABILITY(name) JIFFY_TSA(capability(name))

// A RAII class that manages another capability (MutexLocker style).
#define JIFFY_SCOPED_CAPABILITY JIFFY_TSA(scoped_lockable)

// Data members readable/writable only while the capability is held.
#define JIFFY_GUARDED_BY(x) JIFFY_TSA(guarded_by(x))
#define JIFFY_PT_GUARDED_BY(x) JIFFY_TSA(pt_guarded_by(x))

// The function may only be called while holding the listed capabilities.
#define JIFFY_REQUIRES(...) JIFFY_TSA(requires_capability(__VA_ARGS__))

// Semantic aliases for the two EBR capabilities: `g` is an ebr::Guard
// parameter (epoch pin — node/revision memory is reachable), `t` an
// ebr::VersionTicket parameter (version pin — the purge watermark cannot
// pass the version this call reads at).
#define JIFFY_REQUIRES_GUARD(g) JIFFY_REQUIRES(g)
#define JIFFY_REQUIRES_TICKET(t) JIFFY_REQUIRES(t)

// The function acquires/releases the listed capabilities (or `this` when
// empty, on members of a capability class).
#define JIFFY_ACQUIRE(...) JIFFY_TSA(acquire_capability(__VA_ARGS__))
#define JIFFY_RELEASE(...) JIFFY_TSA(release_capability(__VA_ARGS__))

// Declares that the capability is held at this point without acquiring it;
// the call is the trust boundary (place it right after the RAII constructor
// or behind a class invariant that owns the token).
#define JIFFY_ASSERT_CAPABILITY(...) JIFFY_TSA(assert_capability(__VA_ARGS__))

// The function returns a reference to the given capability.
#define JIFFY_RETURN_CAPABILITY(x) JIFFY_TSA(lock_returned(x))

// The function must NOT be called while holding the listed capabilities.
#define JIFFY_EXCLUDES(...) JIFFY_TSA(locks_excluded(__VA_ARGS__))

// Escape hatch for code the analysis cannot model; every use needs a
// comment explaining why it is safe.
#define JIFFY_NO_THREAD_SAFETY_ANALYSIS JIFFY_TSA(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Protocol-lint markers (tools/lint.py, DESIGN.md §11). The jiffylint passes
// read a suppression grammar that normally lives in comments attached to the
// flagged statement:
//
//   // escapes: <why>     a guarded pointer deliberately outlives its guard
//                         region; <why> names the mechanism that re-protects
//                         it (a member guard, a flag handoff, quiescence).
//   // unlink: <tag>      an ebr::retire site names the `unlink` catalog
//                         entry (tools/memory_model.json) whose CAS/condemn
//                         edge dominates it.
//   // relaxed: <why>     (audit) a relaxed atomic op with a justification.
//   // pairs: <tag>       (audit) a release/acquire site's publication edge.
//
// When the statement is machine-generated or the comment cannot sit on the
// statement (macro expansions, one-liners shared by formatters), these
// no-op markers carry the same information inside the statement's line. They
// compile away entirely; the argument is documentation for the lint.
#define JIFFY_LINT_ESCAPES(why) static_cast<void>(0)
#define JIFFY_LINT_UNLINK(tag) static_cast<void>(0)
