// Software prefetch hints for cache-conscious traversal ("Skiplists with
// Foresight", PAPERS.md; DESIGN.md §14).
//
// A skip-list descent is a pointer chase: every hop is a dependent cacheline
// miss the out-of-order window cannot hide. The traversal paths in
// core/jiffy.h issue explicit read prefetches one step ahead — the next
// tower slot, the next fat node, the revision's inline entry array, the
// binary search's two possible next midpoints — so the miss for step k+1
// overlaps the compare at step k. Hints only: a wrong prefetch costs a few
// cycles of bus traffic, never correctness, so prefetch addresses may be
// read with relaxed loads and may even be stale by the time the line
// arrives.
#pragma once

namespace jiffy {

// Read prefetch with high temporal locality. No-op where the builtin is
// unavailable; never reads *p, so any pointer (including one whose target a
// concurrent writer is still initialising under EBR) is safe to pass.
inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// Write-intent prefetch: pulls the line in exclusive state so the coming
// store skips the read-for-ownership round trip. For memory this thread owns
// outright (recycled allocation blocks), never for shared engine state.
inline void prefetch_w(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

// Prefetch the first `bytes` of a block this thread is about to write
// (capped well under any sane allocation: one hint per cacheline).
inline void prefetch_w_block(const void* p, unsigned bytes) {
#if defined(__GNUC__) || defined(__clang__)
  const auto* c = static_cast<const char*>(p);
  for (unsigned off = 0; off < bytes; off += 64) prefetch_w(c + off);
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace jiffy
