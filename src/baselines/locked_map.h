// Mutex-guarded std::map used as the stand-in implementation behind the
// paper baselines that have not been ported yet (k-ary, the CA trees, lfca,
// kiwi; snaptree's slot is now the native lf_list.h). It is sequentially
// correct — including atomic batches
// and consistent scans, both trivially, under the lock — but represents a
// lower bound on concurrency, so its numbers are labelled as stubs by the
// adapter registry and must not be read as the paper baselines' performance.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "workload/keyvalue.h"

namespace jiffy::baselines {

template <class K, class V, class Less = std::less<K>>
class LockedMap {
 public:
  bool put(const K& k, const V& v) {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.insert_or_assign(k, v).second;
  }

  bool erase(const K& k) {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.erase(k) > 0;
  }

  std::optional<V> get(const K& k) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(k);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool contains(const K& k) const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.find(k) != map_.end();
  }

  std::size_t approx_size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.size();  // exact under the lock
  }

  void apply(Batch<K, V> b) {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& op : b.ops()) {
      if (op.kind == BatchOp<K, V>::Kind::kPut)
        map_.insert_or_assign(op.key, op.value);
      else
        map_.erase(op.key);
    }
  }

  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t emitted = 0;
    for (auto it = map_.lower_bound(from); it != map_.end() && emitted < n;
         ++it, ++emitted)
      f(it->first, it->second);
    return emitted;
  }

  // Descending visit of up to n entries with key <= from.
  template <class F>
  std::size_t rscan_n(const K& from, std::size_t n, F&& f) const {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t emitted = 0;
    for (auto it = map_.upper_bound(from);
         it != map_.begin() && emitted < n;) {
      --it;
      f(it->first, it->second);
      ++emitted;
    }
    return emitted;
  }

  // Ordered visit of every entry in the half-open range [lo, hi).
  template <class F>
  std::size_t range_scan(const K& lo, const K& hi, F&& f) const {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t emitted = 0;
    for (auto it = map_.lower_bound(lo);
         it != map_.end() && map_.key_comp()(it->first, hi); ++it) {
      f(it->first, it->second);
      ++emitted;
    }
    return emitted;
  }

 private:
  mutable std::mutex mu_;
  std::map<K, V, Less> map_;
};

}  // namespace jiffy::baselines
