// Mutex-guarded std::map used as the stand-in implementation behind the
// paper baselines that have not been ported yet (snaptree, k-ary, the CA
// trees, lfca, kiwi). It is sequentially correct — including atomic batches
// and consistent scans, both trivially, under the lock — but represents a
// lower bound on concurrency, so its numbers are labelled as stubs by the
// adapter registry and must not be read as the paper baselines' performance.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "workload/keyvalue.h"

namespace jiffy::baselines {

template <class K, class V, class Less = std::less<K>>
class LockedMap {
 public:
  bool put(const K& k, const V& v) {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.insert_or_assign(k, v).second;
  }

  bool erase(const K& k) {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.erase(k) > 0;
  }

  std::optional<V> get(const K& k) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(k);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  void batch(std::vector<BatchOp<K, V>> ops) {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& op : ops) {
      if (op.kind == BatchOp<K, V>::Kind::kPut)
        map_.insert_or_assign(op.key, op.value);
      else
        map_.erase(op.key);
    }
  }

  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t emitted = 0;
    for (auto it = map_.lower_bound(from); it != map_.end() && emitted < n;
         ++it, ++emitted)
      f(it->first, it->second);
    return emitted;
  }

 private:
  mutable std::mutex mu_;
  std::map<K, V, Less> map_;
};

}  // namespace jiffy::baselines
