// Fomitchev–Ruppert lock-free linked list (PODC 2004), the second truly
// concurrent reference index next to the CSLM skip list.
//
// Each node's successor word packs {pointer, mark, flag}:
//   mark — the node is logically deleted and its successor word is frozen;
//   flag — the node's *successor* is being deleted, freezing this word until
//          the deletion's unlink CAS completes.
// Deletion is a three-step helped protocol: flag the predecessor, mark the
// victim (storing a backlink to the predecessor first, so threads that find
// their predecessor marked can walk left instead of restarting from head),
// then swing the flagged predecessor past the victim. Any thread meeting a
// flagged or marked edge finishes the protocol — the list is lock-free with
// no restarts-from-head on contention, which is the property that makes it a
// useful differential oracle: its progress argument is completely different
// from Jiffy's fat-node revision CAS discipline, so a bug that wedges one is
// unlikely to wedge the other the same way.
//
// Values live behind an atomic V* (in-place lock-free update, same
// marked-recheck linearization trick as cslm.h). Nodes and replaced values
// are reclaimed through the shared EBR: the deletion winner retires the
// victim only after HelpFlagged completed the physical unlink. A marked
// straggler that still points at the victim implies its own deleter is
// parked inside a guard, which pins the epoch and keeps the victim's shell
// alive for exactly as long as that path remains reachable.
//
// Scans are weakly consistent level-0 traversals (no multiversioning);
// rscan_n re-searches the predecessor per step (the list is singly linked);
// apply() is a plain loop, NOT atomic. O(n) searches — keep it out of the
// default bench sweep; it exists for differential correctness suites.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "common/analysis.h"
#include "ebr/ebr.h"
#include "workload/keyvalue.h"

namespace jiffy::baselines {

template <class K, class V, class Less = std::less<K>>
class LfList {
 public:
  LfList() {
    head_ = new Node(K{}, nullptr, Sentinel::kHead);
    tail_ = new Node(K{}, nullptr, Sentinel::kTail);
    // relaxed: constructor runs before the list is shared.
    head_->succ.store(pack(tail_, false, false), std::memory_order_relaxed);
  }

  ~LfList() {
    // relaxed: single-threaded teardown; no concurrent access remains.
    Node* x = ptr(head_->succ.load(std::memory_order_relaxed));
    while (x != tail_) {
      // relaxed: single-threaded teardown; no concurrent access remains.
      Node* nxt = ptr(x->succ.load(std::memory_order_relaxed));
      delete x;
      x = nxt;
    }
    delete head_;
    delete tail_;
    ebr::quiesce();
  }

  LfList(const LfList&) = delete;
  LfList& operator=(const LfList&) = delete;

  // Insert or overwrite; returns true iff the key was newly inserted.
  bool put(const K& k, const V& v) {
    ebr::Guard g;
    g.assert_held();
    Node* newn = nullptr;
    for (;;) {
      auto [prev, curr] = search_from(k, head_, /*inclusive=*/true, g);
      if (node_equals(prev, k)) {
        // In-place update; if the node got marked, our value may never be
        // observed, so reinsert to linearize the put after the delete.
        V* vp = new V(v);
        // unlink: lfl-val-swap
        ebr::retire(
            prev->val.exchange(vp, std::memory_order_acq_rel));  // pairs: val-publish
        if (marked(prev->succ.load(std::memory_order_seq_cst)))  // pairs: lfl-succ
          continue;
        delete newn;  // never published
        return false;
      }
      if (!newn) newn = new Node(k, new V(v), Sentinel::kNone);
      const std::uintptr_t ps =
          prev->succ.load(std::memory_order_seq_cst);  // pairs: lfl-succ
      if (flagged(ps)) {
        help_flagged(prev, ptr(ps), g);
        continue;
      }
      if (marked(ps)) continue;  // prev deleted underneath us: re-search
      if (ptr(ps) != curr) continue;  // raced; re-search
      // relaxed: newn is thread-private until the insert CAS publishes it.
      newn->succ.store(pack(curr, false, false), std::memory_order_relaxed);
      std::uintptr_t expect = pack(curr, false, false);
      if (prev->succ.compare_exchange_strong(
              expect, pack(newn, false, false),
              std::memory_order_seq_cst)) {  // pairs: lfl-succ
        // relaxed: approximate size counter (see approx_size).
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS failed: help whoever got in the way, then retry from prev.
      if (flagged(expect)) help_flagged(prev, ptr(expect), g);
    }
  }

  bool erase(const K& k) {
    ebr::Guard g;
    g.assert_held();
    auto [prev, del] = search_from(k, head_, /*inclusive=*/false, g);
    if (!node_equals(del, k)) return false;
    auto [fprev, won] = try_flag(prev, del, g);
    if (fprev != nullptr) help_flagged(fprev, del, g);
    if (!won) return false;
    // relaxed: approximate size counter (see approx_size).
    size_.fetch_sub(1, std::memory_order_relaxed);
    // help_flagged completed the unlink (the flagged word admits exactly one
    // transition), so the shell is unreachable from live predecessors.
    ebr::retire(del);  // unlink: lfl-unlink
    return true;
  }

  std::optional<V> get(const K& k) const {
    ebr::Guard g;
    g.assert_held();
    auto [prev, curr] = search_from(k, head_, /*inclusive=*/true, g);
    if (!node_equals(prev, k) ||
        marked(prev->succ.load(std::memory_order_seq_cst)))  // pairs: lfl-succ
      return std::nullopt;
    return *prev->val.load(std::memory_order_acquire);  // pairs: val-publish
  }

  bool contains(const K& k) const { return get(k).has_value(); }

  std::size_t approx_size() const {
    // relaxed: the count is approximate by contract.
    const std::int64_t n = size_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }

  // Weakly consistent ascending visit of up to n entries with key >= from.
  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    ebr::Guard g;
    g.assert_held();
    auto [prev, curr] = search_from(from, head_, /*inclusive=*/false, g);
    std::size_t emitted = 0;
    while (curr->sentinel != Sentinel::kTail && emitted < n) {
      const std::uintptr_t nx =
          curr->succ.load(std::memory_order_seq_cst);  // pairs: lfl-succ
      if (!marked(nx)) {
        f(curr->key,
          *curr->val.load(std::memory_order_acquire));  // pairs: val-publish
        ++emitted;
      }
      curr = ptr(nx);
    }
    return emitted;
  }

  // Descending visit of up to n entries with key <= from; the list is singly
  // linked, so each step re-searches for the strict predecessor.
  template <class F>
  std::size_t rscan_n(const K& from, std::size_t n, F&& f) const {
    ebr::Guard g;
    g.assert_held();
    std::size_t emitted = 0;
    K cur = from;
    bool inclusive = true;
    while (emitted < n) {
      // Inclusive search: prev.key <= cur; strict: prev.key < cur. Either
      // way prev is the next candidate going left.
      auto [cand, nxt] = search_from(cur, head_, inclusive, g);
      if (cand->sentinel != Sentinel::kNone) break;
      if (!marked(
              cand->succ.load(std::memory_order_seq_cst))) {  // pairs: lfl-succ
        f(cand->key,
          *cand->val.load(std::memory_order_acquire));  // pairs: val-publish
        ++emitted;
      }
      cur = cand->key;
      inclusive = false;
    }
    return emitted;
  }

  // Weakly consistent ascending visit of [lo, hi).
  template <class F>
  std::size_t range_scan(const K& lo, const K& hi, F&& f) const {
    ebr::Guard g;
    g.assert_held();
    auto [prev, curr] = search_from(lo, head_, /*inclusive=*/false, g);
    std::size_t emitted = 0;
    while (curr->sentinel != Sentinel::kTail && less_(curr->key, hi)) {
      const std::uintptr_t nx =
          curr->succ.load(std::memory_order_seq_cst);  // pairs: lfl-succ
      if (!marked(nx)) {
        f(curr->key,
          *curr->val.load(std::memory_order_acquire));  // pairs: val-publish
        ++emitted;
      }
      curr = ptr(nx);
    }
    return emitted;
  }

  // Not atomic — like CSLM, this baseline has no batch support; the harness
  // only emits batch rows for indices whose registry entry claims them.
  void apply(Batch<K, V> b) {
    for (const auto& op : b.ops()) {
      if (op.kind == BatchOp<K, V>::Kind::kPut)
        put(op.key, op.value);
      else
        erase(op.key);
    }
  }

 private:
  enum class Sentinel : std::uint8_t { kNone, kHead, kTail };

  struct Node {
    const K key;
    std::atomic<V*> val;
    const Sentinel sentinel;
    // {successor pointer, mark, flag}; bit 0 = mark, bit 1 = flag.
    std::atomic<std::uintptr_t> succ{0};
    // Predecessor hint, stored before this node is marked; threads that find
    // their predecessor marked walk left along these instead of restarting.
    std::atomic<Node*> backlink{nullptr};

    Node(K k, V* v, Sentinel s) : key(std::move(k)), val(v), sentinel(s) {}
    // relaxed: the node is unreachable once the EBR grace period hands it to
    // the destructor; no concurrent access remains.
    ~Node() { delete val.load(std::memory_order_relaxed); }
  };

  static std::uintptr_t pack(Node* n, bool mark, bool flag) {
    return reinterpret_cast<std::uintptr_t>(n) | (mark ? 1u : 0u) |
           (flag ? 2u : 0u);
  }
  static Node* ptr(std::uintptr_t s) {
    return reinterpret_cast<Node*>(s & ~std::uintptr_t{3});
  }
  static bool marked(std::uintptr_t s) { return (s & 1u) != 0; }
  static bool flagged(std::uintptr_t s) { return (s & 2u) != 0; }

  bool node_less(const Node* n, const K& k) const {
    if (n->sentinel == Sentinel::kHead) return true;
    if (n->sentinel == Sentinel::kTail) return false;
    return less_(n->key, k);
  }
  bool node_leq(const Node* n, const K& k) const {
    if (n->sentinel == Sentinel::kHead) return true;
    if (n->sentinel == Sentinel::kTail) return false;
    return !less_(k, n->key);
  }
  bool node_equals(const Node* n, const K& k) const {
    return n->sentinel == Sentinel::kNone && !less_(n->key, k) &&
           !less_(k, n->key);
  }

  // FR SearchFrom: returns (prev, curr) with prev.key <= k < curr.key when
  // inclusive, prev.key < k <= curr.key otherwise. Helps complete any
  // deletion met on the path (a marked curr whose predecessor edge we hold
  // flagged is unlinked in passing).
  std::pair<Node*, Node*> search_from(const K& k, Node* prev, bool inclusive,
                                      const ebr::Guard& g) const
      JIFFY_REQUIRES_GUARD(g) {
    Node* next =
        ptr(prev->succ.load(std::memory_order_seq_cst));  // pairs: lfl-succ
    auto advance = [&](const Node* n) {
      return inclusive ? node_leq(n, k) : node_less(n, k);
    };
    while (advance(next)) {
      for (;;) {
        const std::uintptr_t ns =
            next->succ.load(std::memory_order_seq_cst);  // pairs: lfl-succ
        if (!marked(ns)) break;
        const std::uintptr_t ps =
            prev->succ.load(std::memory_order_seq_cst);  // pairs: lfl-succ
        if (ptr(ps) == next && marked(ps)) break;  // frozen edge: walk through
        if (ptr(ps) == next && flagged(ps)) {
          // Mark implies the unique live predecessor edge is flagged, and
          // that edge is ours: complete the unlink.
          help_marked(prev, next, g);
        }
        next = ptr(
            prev->succ.load(std::memory_order_seq_cst));  // pairs: lfl-succ
        if (!advance(next)) return {prev, next};
      }
      prev = next;
      next =
          ptr(prev->succ.load(std::memory_order_seq_cst));  // pairs: lfl-succ
    }
    return {prev, next};
  }

  // Flag prev's successor word while it points at target. Returns the node
  // holding the flag (null if target vanished) and whether WE set it.
  std::pair<Node*, bool> try_flag(Node* prev, Node* target,
                                  const ebr::Guard& g) const
      JIFFY_REQUIRES_GUARD(g) {
    for (;;) {
      const std::uintptr_t want = pack(target, false, true);
      std::uintptr_t expect = pack(target, false, false);
      if (prev->succ.load(std::memory_order_seq_cst) ==  // pairs: lfl-succ
          want)
        return {prev, false};  // someone else is deleting target
      if (prev->succ.compare_exchange_strong(
              expect, want, std::memory_order_seq_cst))  // pairs: lfl-succ
        return {prev, true};
      if (expect == want) return {prev, false};
      if (marked(
              prev->succ.load(std::memory_order_seq_cst)))  // pairs: lfl-succ
        prev = walk_back(prev, g);
      auto [p, del] = search_from(target->key, prev, /*inclusive=*/false, g);
      if (del != target) return {nullptr, false};  // already deleted
      prev = p;
    }
  }

  void help_flagged(Node* prev, Node* del, const ebr::Guard& g) const
      JIFFY_REQUIRES_GUARD(g) {
    del->backlink.store(prev, std::memory_order_seq_cst);  // pairs: lfl-backlink
    if (!marked(del->succ.load(std::memory_order_seq_cst)))  // pairs: lfl-succ
      try_mark(del, g);
    help_marked(prev, del, g);
  }

  void try_mark(Node* del, const ebr::Guard& g) const JIFFY_REQUIRES_GUARD(g) {
    for (;;) {
      const std::uintptr_t s =
          del->succ.load(std::memory_order_seq_cst);  // pairs: lfl-succ
      if (marked(s)) return;
      if (flagged(s)) {
        // Finish the successor's deletion first.
        help_flagged(del, ptr(s), g);
        continue;
      }
      std::uintptr_t expect = s;
      if (del->succ.compare_exchange_strong(
              expect, s | 1u, std::memory_order_seq_cst))  // pairs: lfl-succ
        return;
    }
  }

  void help_marked(Node* prev, Node* del,
                   [[maybe_unused]] const ebr::Guard& g) const
      JIFFY_REQUIRES_GUARD(g) {
    Node* next =
        ptr(del->succ.load(std::memory_order_seq_cst));  // pairs: lfl-succ
    std::uintptr_t expect = pack(del, false, true);
    prev->succ.compare_exchange_strong(
        expect, pack(next, false, false),
        std::memory_order_seq_cst);  // pairs: lfl-succ
  }

  Node* walk_back(Node* n, [[maybe_unused]] const ebr::Guard& g) const
      JIFFY_REQUIRES_GUARD(g) {
    while (marked(n->succ.load(std::memory_order_seq_cst))) {  // pairs: lfl-succ
      Node* b = n->backlink.load(std::memory_order_seq_cst);  // pairs: lfl-backlink
      if (b == nullptr) break;  // mark not yet published its backlink? head.
      n = b;
    }
    return n;
  }

  Less less_{};
  mutable std::atomic<std::int64_t> size_{0};
  Node* head_;
  Node* tail_;
};

}  // namespace jiffy::baselines
