// CSLM baseline: a classic lock-free skip list in the Herlihy–Shavit style
// (The Art of Multiprocessor Programming §14.4, the algorithm behind Java's
// ConcurrentSkipListMap and the RocksDB variant in /root/related). One entry
// per node, towers with a mark bit stolen from each next pointer, logical
// deletion at level 0 and physical unlinking by every passing find().
//
// This is the "no fat nodes" contrast for Jiffy's locality argument: every
// step of a traversal is a dependent cache miss. Values live behind an
// atomic pointer so in-place updates are lock-free; nodes and replaced
// values are reclaimed through the shared EBR. Scans (forward, reverse and
// bounded-range) are weakly consistent (like the Java CSLM iterators the
// paper benchmarks against); apply() is a plain loop, i.e. NOT atomic — the
// harness only runs batch rows for indices that support them.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/analysis.h"
#include "ebr/ebr.h"
#include "workload/keyvalue.h"
#include "workload/rng.h"

namespace jiffy::baselines {

template <class K, class V, class Less = std::less<K>>
class CslmMap {
 public:
  CslmMap() {
    head_ = new Node(K{}, nullptr, kMaxLevel - 1, Sentinel::kHead);
    tail_ = new Node(K{}, nullptr, kMaxLevel - 1, Sentinel::kTail);
    for (int l = 0; l < kMaxLevel; ++l)
      // relaxed: constructor runs before the map is shared.
      head_->next[l].store(pack(tail_, false), std::memory_order_relaxed);
  }

  ~CslmMap() {
    // relaxed: single-threaded teardown; no concurrent access remains.
    Node* x = unmark(head_->next[0].load(std::memory_order_relaxed));
    while (x != tail_) {
      // relaxed: single-threaded teardown; no concurrent access remains.
      Node* nxt = unmark(x->next[0].load(std::memory_order_relaxed));
      delete x;
      x = nxt;
    }
    delete head_;
    delete tail_;
    ebr::quiesce();
  }

  CslmMap(const CslmMap&) = delete;
  CslmMap& operator=(const CslmMap&) = delete;

  bool put(const K& k, const V& v) {
    ebr::Guard g;
    g.assert_held();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    for (;;) {
      if (find(k, preds, succs, g)) {
        Node* node = succs[0];
        V* vp = new V(v);
        V* old =
            node->val.exchange(vp, std::memory_order_acq_rel);  // pairs: val-publish
        ebr::retire(old);  // unlink: cslm-val-swap
        if (marked(
                node->next[0].load(std::memory_order_seq_cst))) {  // pairs: cslm-next
          // The node was logically removed; our value may never be seen.
          // Retry as an insert so the put linearizes after the remove.
          continue;
        }
        return false;
      }
      const int top = random_level();
      auto* node = new Node(k, new V(v), top, Sentinel::kNone);
      for (int l = 0; l <= top; ++l)
        // relaxed: node is thread-private until the level-0 CAS publishes it.
        node->next[l].store(pack(succs[l], false), std::memory_order_relaxed);
      std::uintptr_t expect = pack(succs[0], false);
      if (!preds[0]->next[0].compare_exchange_strong(
              expect, pack(node, false),
              std::memory_order_seq_cst)) {  // pairs: cslm-next
        delete node;  // never published
        continue;
      }
      // relaxed: approximate size counter (see approx_size).
      size_.fetch_add(1, std::memory_order_relaxed);
      for (int l = 1; l <= top; ++l) {
        for (;;) {
          std::uintptr_t e = pack(succs[l], false);
          if (preds[l]->next[l].compare_exchange_strong(
                  e, pack(node, false),
                  std::memory_order_seq_cst))  // pairs: cslm-next
            break;
          find(k, preds, succs, g);  // refresh preds/succs
          if (succs[0] != node) return true;  // already removed: stop linking
          std::uintptr_t cur =
              node->next[l].load(std::memory_order_seq_cst);  // pairs: cslm-next
          if (marked(cur)) return true;  // being removed: remover owns links
          if (unmark(cur) != succs[l])
            node->next[l].compare_exchange_strong(
                cur, pack(succs[l], false),
                std::memory_order_seq_cst);  // pairs: cslm-next
        }
      }
      return true;
    }
  }

  bool erase(const K& k) {
    ebr::Guard g;
    g.assert_held();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    if (!find(k, preds, succs, g)) return false;
    Node* node = succs[0];
    for (int l = node->top; l >= 1; --l) {
      std::uintptr_t cur =
          node->next[l].load(std::memory_order_seq_cst);  // pairs: cslm-next
      while (!marked(cur)) {
        node->next[l].compare_exchange_weak(
            cur, cur | 1u, std::memory_order_seq_cst);  // pairs: cslm-next
      }
    }
    std::uintptr_t cur =
        node->next[0].load(std::memory_order_seq_cst);  // pairs: cslm-next
    for (;;) {
      if (marked(cur)) return false;  // lost to a concurrent remover
      if (node->next[0].compare_exchange_strong(
              cur, cur | 1u, std::memory_order_seq_cst)) {  // pairs: cslm-next
        // relaxed: approximate size counter (see approx_size).
        size_.fetch_sub(1, std::memory_order_relaxed);
        // A completed find() pass snips the node at every level it still
        // occupied; only then is it safe to hand to the collector.
        find(k, preds, succs, g);
        ebr::retire(node);  // unlink: cslm-unlink
        return true;
      }
    }
  }

  std::optional<V> get(const K& k) const {
    ebr::Guard g;
    g.assert_held();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    if (!find(k, preds, succs, g)) return std::nullopt;
    V* p = succs[0]->val.load(std::memory_order_acquire);  // pairs: val-publish
    return *p;
  }

  bool contains(const K& k) const {
    ebr::Guard g;
    g.assert_held();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    return find(k, preds, succs, g);
  }

  // Atomic insert/remove counter (puts that overwrite do not change it);
  // transiently off by in-flight ops, hence "approx".
  std::size_t approx_size() const {
    // relaxed: the count is approximate by contract.
    const std::int64_t n = size_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }

  // Weakly consistent ordered traversal at level 0.
  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    ebr::Guard g;
    g.assert_held();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    find(from, preds, succs, g);
    std::size_t emitted = 0;
    for (Node* cur = succs[0]; cur != tail_ && emitted < n;) {
      const std::uintptr_t nx =
          cur->next[0].load(std::memory_order_seq_cst);  // pairs: cslm-next
      if (!marked(nx)) {
        f(cur->key,
          *cur->val.load(std::memory_order_acquire));  // pairs: val-publish
        ++emitted;
      }
      cur = unmark(nx);
    }
    return emitted;
  }

  // Descending visit of up to n entries with key <= from. The list is
  // singly linked, so each step re-searches for the strict predecessor
  // (O(log n) per entry, like Java's CSLM descending iterators); weakly
  // consistent like scan_n.
  template <class F>
  std::size_t rscan_n(const K& from, std::size_t n, F&& f) const {
    ebr::Guard g;
    g.assert_held();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    std::size_t emitted = 0;
    K cur = from;
    bool inclusive = true;
    while (emitted < n) {
      const bool eq = find(cur, preds, succs, g);
      Node* cand = (inclusive && eq) ? succs[0] : preds[0];
      if (cand->sentinel != Sentinel::kNone) break;
      if (!marked(cand->next[0].load(
              std::memory_order_seq_cst))) {  // pairs: cslm-next
        f(cand->key,
          *cand->val.load(std::memory_order_acquire));  // pairs: val-publish
        ++emitted;
      }
      cur = cand->key;
      inclusive = false;
    }
    return emitted;
  }

  // Ordered visit of every entry in the half-open range [lo, hi); weakly
  // consistent, level-0 traversal.
  template <class F>
  std::size_t range_scan(const K& lo, const K& hi, F&& f) const {
    ebr::Guard g;
    g.assert_held();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    find(lo, preds, succs, g);
    std::size_t emitted = 0;
    for (Node* cur = succs[0];
         cur->sentinel != Sentinel::kTail && less_(cur->key, hi);) {
      const std::uintptr_t nx =
          cur->next[0].load(std::memory_order_seq_cst);  // pairs: cslm-next
      if (!marked(nx)) {
        f(cur->key,
          *cur->val.load(std::memory_order_acquire));  // pairs: val-publish
        ++emitted;
      }
      cur = unmark(nx);
    }
    return emitted;
  }

  // Not atomic: CSLM has no batch support in the paper either; the harness
  // only emits batch rows for indices that provide real atomic batches.
  void apply(Batch<K, V> b) {
    for (const auto& op : b.ops()) {
      if (op.kind == BatchOp<K, V>::Kind::kPut)
        put(op.key, op.value);
      else
        erase(op.key);
    }
  }

 private:
  static constexpr int kMaxLevel = 20;

  enum class Sentinel : std::uint8_t { kNone, kHead, kTail };

  struct Node {
    const K key;
    std::atomic<V*> val;
    const int top;  // occupies levels 0..top
    const Sentinel sentinel;
    std::vector<std::atomic<std::uintptr_t>> next;

    Node(K k, V* v, int t, Sentinel s)
        : key(std::move(k)), val(v), top(t), sentinel(s), next(t + 1) {}

    // relaxed: the node is unreachable once the EBR grace period hands it to
    // the destructor; no concurrent access remains.
    ~Node() { delete val.load(std::memory_order_relaxed); }
  };

  static std::uintptr_t pack(Node* n, bool mark) {
    return reinterpret_cast<std::uintptr_t>(n) | (mark ? 1u : 0u);
  }
  static Node* unmark(std::uintptr_t p) {
    return reinterpret_cast<Node*>(p & ~std::uintptr_t{1});
  }
  static bool marked(std::uintptr_t p) { return (p & 1u) != 0; }

  // true when node's key < k (sentinels compare as -inf / +inf).
  bool node_less(const Node* n, const K& k) const {
    if (n->sentinel == Sentinel::kHead) return true;
    if (n->sentinel == Sentinel::kTail) return false;
    return less_(n->key, k);
  }

  bool node_equals(const Node* n, const K& k) const {
    return n->sentinel == Sentinel::kNone && !less_(n->key, k) &&
           !less_(k, n->key);
  }

  // HS find: locate preds/succs at every level, physically unlinking any
  // marked node met on the path; restarts whenever a snip CAS fails, so on
  // return the search path is clean at every level.
  bool find(const K& k, Node** preds, Node** succs,
            [[maybe_unused]] const ebr::Guard& g) const
      JIFFY_REQUIRES_GUARD(g) {
  retry:
    Node* pred = head_;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      Node* curr = unmark(
          pred->next[l].load(std::memory_order_seq_cst));  // pairs: cslm-next
      for (;;) {
        std::uintptr_t nx =
            curr->next[l].load(std::memory_order_seq_cst);  // pairs: cslm-next
        while (marked(nx)) {  // curr is deleted: snip it
          std::uintptr_t e = pack(curr, false);
          if (!pred->next[l].compare_exchange_strong(
                  e, pack(unmark(nx), false),
                  std::memory_order_seq_cst))  // pairs: cslm-next
            goto retry;
          curr = unmark(nx);
          nx = curr->next[l].load(std::memory_order_seq_cst);  // pairs: cslm-next
        }
        if (node_less(curr, k)) {
          pred = curr;
          curr = unmark(nx);
        } else {
          break;
        }
      }
      preds[l] = pred;
      succs[l] = curr;
    }
    return node_equals(succs[0], k);
  }

  static int random_level() {
    thread_local std::uint64_t state =
        splitmix64(reinterpret_cast<std::uintptr_t>(&state) ^ 0xC51Au);
    state = splitmix64(state);
    int h = 0;
    std::uint64_t x = state;
    while ((x & 3) == 0 && h < kMaxLevel - 1) {
      ++h;
      x >>= 2;
    }
    return h;
  }

  Less less_{};
  mutable std::atomic<std::int64_t> size_{0};
  Node* head_;
  Node* tail_;
};

}  // namespace jiffy::baselines
