// Uniform adapter layer between the figure harness and every index it
// benchmarks. Each adapter exposes:
//   bool put(k, v) / bool erase(k) / std::optional<V> get(k)
//   void batch(std::vector<BatchOp<K,V>>)           (atomic where supported)
//   std::size_t scan_n(from, n, f)                  (ordered visit)
// See registry.h for which adapters are native and which still run on the
// LockedMap stub.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "baselines/cslm.h"
#include "baselines/locked_map.h"
#include "baselines/registry.h"
#include "core/jiffy.h"
#include "workload/keyvalue.h"

namespace jiffy {

template <class K, class V>
class JiffyAdapter {
 public:
  bool put(const K& k, const V& v) { return map_.put(k, v); }
  bool erase(const K& k) { return map_.erase(k); }
  std::optional<V> get(const K& k) const { return map_.get(k); }
  void batch(std::vector<BatchOp<K, V>> ops) { map_.batch(std::move(ops)); }
  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    return map_.scan_n(from, n, std::forward<F>(f));
  }
  JiffyMap<K, V>& underlying() { return map_; }

 private:
  JiffyMap<K, V> map_;
};

template <class K, class V>
class CslmAdapter {
 public:
  bool put(const K& k, const V& v) { return map_.put(k, v); }
  bool erase(const K& k) { return map_.erase(k); }
  std::optional<V> get(const K& k) const { return map_.get(k); }
  void batch(std::vector<BatchOp<K, V>> ops) { map_.batch(std::move(ops)); }
  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    return map_.scan_n(from, n, std::forward<F>(f));
  }

 private:
  baselines::CslmMap<K, V> map_;
};

// Stub adapters: distinct types (so the harness's per-index template
// instantiations stay separate in profiles) over the LockedMap stand-in.
// Replace one by giving it a real `map_` — the harness needs no change.
template <class K, class V, class Tag>
class StubAdapter {
 public:
  bool put(const K& k, const V& v) { return map_.put(k, v); }
  bool erase(const K& k) { return map_.erase(k); }
  std::optional<V> get(const K& k) const { return map_.get(k); }
  void batch(std::vector<BatchOp<K, V>> ops) { map_.batch(std::move(ops)); }
  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    return map_.scan_n(from, n, std::forward<F>(f));
  }

 private:
  baselines::LockedMap<K, V> map_;
};

namespace baselines::tags {
struct SnapTree {};
struct Kary {};
struct CaAvl {};
struct CaSl {};
struct CaImm {};
struct Lfca {};
struct Kiwi {};
}  // namespace baselines::tags

template <class K, class V>
using SnapTreeAdapter = StubAdapter<K, V, baselines::tags::SnapTree>;
template <class K, class V>
using KaryAdapter = StubAdapter<K, V, baselines::tags::Kary>;
template <class K, class V>
using CaAvlAdapter = StubAdapter<K, V, baselines::tags::CaAvl>;
template <class K, class V>
using CaSlAdapter = StubAdapter<K, V, baselines::tags::CaSl>;
template <class K, class V>
using CaImmAdapter = StubAdapter<K, V, baselines::tags::CaImm>;
template <class K, class V>
using LfcaAdapter = StubAdapter<K, V, baselines::tags::Lfca>;
template <class K, class V>
using KiwiAdapter = StubAdapter<K, V, baselines::tags::Kiwi>;

}  // namespace jiffy
