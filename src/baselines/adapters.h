// Uniform adapter layer between the figure harness and every index it
// benchmarks, pinned down by the MapApi concept: CRUD + contains /
// approx_size, typed atomic-batch apply, forward/reverse bounded scans and
// a half-open range scan. The harness templates are constrained on MapApi,
// so adding an index is "make it model the concept" — no per-index special
// cases. See registry.h for which adapters are native and which still run
// on the LockedMap stub.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "baselines/cslm.h"
#include "baselines/lf_list.h"
#include "baselines/locked_map.h"
#include "baselines/registry.h"
#include "core/jiffy.h"
#include "workload/keyvalue.h"

namespace jiffy {

// The single surface the harness compiles against. `scan_n` visits up to n
// entries with key >= from in ascending order; `rscan_n` up to n entries
// with key <= from in descending order; `range_scan` every entry in the
// half-open range [lo, hi) ascending. All three return the visit count.
// `apply` consumes a typed Batch (atomic where the index supports it — see
// registry.h). `approx_size` is O(1) and may be transiently off by
// in-flight operations.
template <class A>
concept MapApi = requires(A& a, const A& ca, const typename A::key_type& k,
                          const typename A::mapped_type& v,
                          Batch<typename A::key_type,
                                typename A::mapped_type> b) {
  { a.put(k, v) } -> std::same_as<bool>;
  { a.erase(k) } -> std::same_as<bool>;
  { ca.get(k) } -> std::same_as<std::optional<typename A::mapped_type>>;
  { ca.contains(k) } -> std::same_as<bool>;
  { ca.approx_size() } -> std::same_as<std::size_t>;
  { a.apply(std::move(b)) } -> std::same_as<void>;
  { ca.scan_n(k, std::size_t{1},
              [](const typename A::key_type&,
                 const typename A::mapped_type&) {}) }
      -> std::same_as<std::size_t>;
  { ca.rscan_n(k, std::size_t{1},
               [](const typename A::key_type&,
                  const typename A::mapped_type&) {}) }
      -> std::same_as<std::size_t>;
  { ca.range_scan(k, k,
                  [](const typename A::key_type&,
                     const typename A::mapped_type&) {}) }
      -> std::same_as<std::size_t>;
};

template <class K, class V>
class JiffyAdapter {
 public:
  using key_type = K;
  using mapped_type = V;

  bool put(const K& k, const V& v) { return map_.put(k, v); }
  bool erase(const K& k) { return map_.erase(k); }
  std::optional<V> get(const K& k) const { return map_.get(k); }
  bool contains(const K& k) const { return map_.contains(k); }
  std::size_t approx_size() const { return map_.approx_size(); }
  void apply(Batch<K, V> b) { map_.apply(std::move(b)); }
  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    return map_.scan_n(from, n, std::forward<F>(f));
  }
  template <class F>
  std::size_t rscan_n(const K& from, std::size_t n, F&& f) const {
    return map_.rscan_n(from, n, std::forward<F>(f));
  }
  template <class F>
  std::size_t range_scan(const K& lo, const K& hi, F&& f) const {
    return map_.range_scan(lo, hi, std::forward<F>(f));
  }
  JiffyMap<K, V>& underlying() { return map_; }

 private:
  JiffyMap<K, V> map_;
};

template <class K, class V>
class CslmAdapter {
 public:
  using key_type = K;
  using mapped_type = V;

  bool put(const K& k, const V& v) { return map_.put(k, v); }
  bool erase(const K& k) { return map_.erase(k); }
  std::optional<V> get(const K& k) const { return map_.get(k); }
  bool contains(const K& k) const { return map_.contains(k); }
  std::size_t approx_size() const { return map_.approx_size(); }
  void apply(Batch<K, V> b) { map_.apply(std::move(b)); }
  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    return map_.scan_n(from, n, std::forward<F>(f));
  }
  template <class F>
  std::size_t rscan_n(const K& from, std::size_t n, F&& f) const {
    return map_.rscan_n(from, n, std::forward<F>(f));
  }
  template <class F>
  std::size_t range_scan(const K& lo, const K& hi, F&& f) const {
    return map_.range_scan(lo, hi, std::forward<F>(f));
  }

 private:
  baselines::CslmMap<K, V> map_;
};

template <class K, class V>
class LfListAdapter {
 public:
  using key_type = K;
  using mapped_type = V;

  bool put(const K& k, const V& v) { return map_.put(k, v); }
  bool erase(const K& k) { return map_.erase(k); }
  std::optional<V> get(const K& k) const { return map_.get(k); }
  bool contains(const K& k) const { return map_.contains(k); }
  std::size_t approx_size() const { return map_.approx_size(); }
  void apply(Batch<K, V> b) { map_.apply(std::move(b)); }
  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    return map_.scan_n(from, n, std::forward<F>(f));
  }
  template <class F>
  std::size_t rscan_n(const K& from, std::size_t n, F&& f) const {
    return map_.rscan_n(from, n, std::forward<F>(f));
  }
  template <class F>
  std::size_t range_scan(const K& lo, const K& hi, F&& f) const {
    return map_.range_scan(lo, hi, std::forward<F>(f));
  }

 private:
  baselines::LfList<K, V> map_;
};

// Stub adapters: distinct types (so the harness's per-index template
// instantiations stay separate in profiles) over the LockedMap stand-in.
// Replace one by giving it a real `map_` — the harness needs no change.
template <class K, class V, class Tag>
class StubAdapter {
 public:
  using key_type = K;
  using mapped_type = V;

  bool put(const K& k, const V& v) { return map_.put(k, v); }
  bool erase(const K& k) { return map_.erase(k); }
  std::optional<V> get(const K& k) const { return map_.get(k); }
  bool contains(const K& k) const { return map_.contains(k); }
  std::size_t approx_size() const { return map_.approx_size(); }
  void apply(Batch<K, V> b) { map_.apply(std::move(b)); }
  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    return map_.scan_n(from, n, std::forward<F>(f));
  }
  template <class F>
  std::size_t rscan_n(const K& from, std::size_t n, F&& f) const {
    return map_.rscan_n(from, n, std::forward<F>(f));
  }
  template <class F>
  std::size_t range_scan(const K& lo, const K& hi, F&& f) const {
    return map_.range_scan(lo, hi, std::forward<F>(f));
  }

 private:
  baselines::LockedMap<K, V> map_;
};

namespace baselines::tags {
struct Kary {};
struct CaAvl {};
struct CaSl {};
struct CaImm {};
struct Lfca {};
struct Kiwi {};
}  // namespace baselines::tags

template <class K, class V>
using KaryAdapter = StubAdapter<K, V, baselines::tags::Kary>;
template <class K, class V>
using CaAvlAdapter = StubAdapter<K, V, baselines::tags::CaAvl>;
template <class K, class V>
using CaSlAdapter = StubAdapter<K, V, baselines::tags::CaSl>;
template <class K, class V>
using CaImmAdapter = StubAdapter<K, V, baselines::tags::CaImm>;
template <class K, class V>
using LfcaAdapter = StubAdapter<K, V, baselines::tags::Lfca>;
template <class K, class V>
using KiwiAdapter = StubAdapter<K, V, baselines::tags::Kiwi>;

static_assert(MapApi<JiffyAdapter<std::uint64_t, std::uint64_t>>);
static_assert(MapApi<CslmAdapter<std::uint64_t, std::uint64_t>>);
static_assert(MapApi<LfListAdapter<std::uint64_t, std::uint64_t>>);
static_assert(MapApi<KaryAdapter<std::uint64_t, std::uint64_t>>);

}  // namespace jiffy
