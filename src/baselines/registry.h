// Compile-time registry of the benchmark indices (paper §4.1).
//
// `kind` records how honestly each adapter reproduces the paper baseline:
//   kNative — a real implementation lives in this tree (jiffy, cslm, and
//             the lf-list differential reference);
//   kStub   — compiles and runs behind a LockedMap so every figure harness
//             links today, but its rows measure the stub, not the paper's
//             baseline. run_all.sh only sweeps native indices by default
//             (lf-list stays out of the sweep too: O(n) searches).
// Porting order for the stubs is tracked in ROADMAP.md.
#pragma once

#include <cstddef>

namespace jiffy::baselines {

enum class AdapterKind { kNative, kStub };

struct AdapterInfo {
  const char* name;        // --index= spelling in the harness
  const char* description;
  AdapterKind kind;
  bool atomic_batches;     // participates in the batch rows of the figures
  // Every adapter models MapApi (forward/reverse/range scans included); this
  // flag records whether multi-entry reads are snapshot-consistent (Jiffy's
  // versioned scans, the stubs' global lock) or weakly consistent (CSLM).
  bool snapshot_scans;
};

inline constexpr AdapterInfo kAdapterRegistry[] = {
    {"jiffy", "this tree's JiffyMap (paper's subject)", AdapterKind::kNative,
     true, true},
    {"cslm", "lock-free skip list, Herlihy-Shavit style (Java CSLM analogue)",
     AdapterKind::kNative, false, false},
    {"lf-list", "Fomitchev-Ruppert lock-free linked list",
     AdapterKind::kNative, false, false},
    {"k-ary", "Brown-Helga lock-free k-ary search tree", AdapterKind::kStub,
     false, true},
    {"ca-avl", "contention-adapting AVL tree", AdapterKind::kStub, true,
     true},
    {"ca-sl", "contention-adapting skip list", AdapterKind::kStub, true,
     true},
    {"ca-imm", "CA tree with immutable leaf containers", AdapterKind::kStub,
     false, true},
    {"lfca", "lock-free contention-adapting search tree", AdapterKind::kStub,
     false, true},
    {"kiwi", "KiWi wait-free-scan key-value map", AdapterKind::kStub, false,
     true},
};

inline constexpr std::size_t kAdapterCount =
    sizeof(kAdapterRegistry) / sizeof(kAdapterRegistry[0]);

constexpr const AdapterInfo* adapter_info(const char* name) {
  for (const AdapterInfo& a : kAdapterRegistry) {
    const char* p = a.name;
    const char* q = name;
    while (*p && *q && *p == *q) {
      ++p;
      ++q;
    }
    if (*p == '\0' && *q == '\0') return &a;
  }
  return nullptr;
}

}  // namespace jiffy::baselines
