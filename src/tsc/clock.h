// Version-number sources (paper §3.2).
//
// Jiffy stamps every revision with a version read from the CPU timestamp
// counter: RDTSCP is a ~10 ns serializing-enough read that is monotonic
// across cores on invariant-TSC hardware, so it gives a global version order
// without the shared cache line a fetch_add counter bounces (footnote 3: the
// counter-based prototype "did not scale past 4-8 threads").
//
// Three interchangeable sources, all exposing `std::uint64_t read()`:
//   TscClock            RDTSCP (falls back to SteadyClock off x86-64)
//   SteadyClock         std::chrono::steady_clock (vDSO call, portable)
//   AtomicCounterClock  shared fetch_add (the rejected design; ablation A1)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define JIFFY_HAVE_RDTSCP 1
#endif

namespace jiffy {

class SteadyClock {
 public:
  std::uint64_t read() const {
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }
};

#if defined(JIFFY_HAVE_RDTSCP)
class TscClock {
 public:
  std::uint64_t read() const {
    unsigned aux;
    // RDTSCP orders after prior loads/stores of this thread, which is what
    // version stamping needs: the stamp must not be read before the revision
    // install it follows.
    return __rdtscp(&aux);
  }
};
#else
using TscClock = SteadyClock;
#endif

// Shared atomic counter; every read is an RMW on one cache line.
class AtomicCounterClock {
 public:
  std::uint64_t read() const {
    // relaxed: only the RMW's atomicity matters — each caller needs a unique,
    // globally ordered value, and fetch_add's single modification order
    // provides that without fencing anything else.
    return counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  mutable std::atomic<std::uint64_t> counter_{0};
};

}  // namespace jiffy
