// Jiffy: a lock-free ordered map with fat-node revisions, batch updates and
// snapshots (Kobus, Kokociński, Wojciechowski; PPoPP 2022).
//
// Layout (DESIGN.md has the full story):
//   * The bottom level is a linked list of *fat nodes*; each node owns a key
//     range [anchor, next->anchor) and points to an immutable Revision — a
//     sorted array of entries plus an optional two-slot hash index (§3.3.5).
//     A skip-list tower over the nodes (grown at node creation, never
//     removed) gives O(log n) node location.
//   * Every update builds a new revision and CASes the node's revision
//     pointer; the replaced revision stays reachable through `prev`, forming
//     a per-node version chain that snapshot readers walk.
//   * Versions are timestamps (tsc/clock.h). A new revision is installed
//     with a *pending* version and stamped right after the CAS; readers that
//     meet a pending plain revision help stamp it. Node splits install every
//     resulting revision under one shared VersionCell in a single CAS on the
//     old node (the new right-hand nodes hang off the revision's `sibling`
//     pointer until helped into the list), so a split is atomic.
//   * Batch updates (§3.4) install one kBatch revision per affected node, in
//     ascending key order, all sharing a VersionCell that is stamped only
//     after the last install: the whole batch becomes visible atomically.
//     Readers treat a pending batch revision as not-yet-linearized and read
//     through `prev`; writers wait for the stamp (helping is future work).
//   * Replaced revisions are retired through EBR *after* their successor is
//     stamped; together with monotonic clock reads this guarantees a reader
//     never follows `prev` into memory retired before its guard began.
//   * Revision size is either fixed or driven by a time-weighted EMA of the
//     read fraction (§3.3.6): small revisions for update-heavy phases, large
//     ones for lookup-heavy phases.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "ebr/ebr.h"
#include "tsc/clock.h"
#include "workload/keyvalue.h"
#include "workload/rng.h"

namespace jiffy {

inline constexpr std::uint64_t kPendingVersion = ~0ull;

enum class RevKind : std::uint8_t {
  kPlain,     // single-key update (or split part)
  kBatch,     // member of an atomic batch (§3.4)
  kMerge,     // union revision absorbing the successor node (§3.3.6)
  kAbsorbed,  // tombstone marker: this node's content moved to rev->home
};

// Fold an arbitrary std::hash result to the 16-bit tag the revision hash
// index stores (std::hash<integral> is the identity, so mix here).
inline std::uint16_t fold_hash16(std::size_t h) {
  std::uint64_t x = h;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 29;
  return static_cast<std::uint16_t>(x ^ (x >> 16));
}

// Shared version for multi-revision atomic installs (splits and batches).
// `helpable` distinguishes splits (fully published by one CAS, so any reader
// may stamp) from batches (multi-CAS; only the batch writer stamps).
struct VersionCell {
  std::atomic<std::uint64_t> version{kPendingVersion};
  std::atomic<std::uint32_t> refs{0};
  bool helpable = true;
};

template <class K, class V>
struct JiffyNode;

// An immutable sorted entry array; the unit of update and of multiversioned
// reads. Published by a CAS on JiffyNode::rev and reclaimed through EBR once
// unref'd (`link_refs` counts head pointers, not `prev` edges: a `prev` edge
// may dangle after reclamation, but the version rule keeps readers off it).
template <class K, class V>
struct Revision {
  using Entry = std::pair<K, V>;
  static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;

  RevKind kind = RevKind::kPlain;
  std::atomic<std::uint64_t> version{kPendingVersion};
  VersionCell* cell = nullptr;       // shared version (splits/batches/merges)
  Revision* prev = nullptr;          // the revision this one replaced
  JiffyNode<K, V>* sibling = nullptr;    // split: first new right-hand node
  JiffyNode<K, V>* link_expect = nullptr;  // split: next[0] value to CAS from
  JiffyNode<K, V>* home = nullptr;   // kAbsorbed: the node that absorbed us
  std::atomic<std::uint32_t> link_refs{1};
  std::uint32_t hmask = 0;           // hash bucket count - 1
  std::vector<Entry> entries;        // sorted by key, unique
  std::vector<std::uint32_t> hslots; // 2 slots/bucket: (tag16 << 16) | index
  std::vector<std::uint64_t> hoverflow;  // per-bucket overflow bitmap

  ~Revision() {
    if (cell && cell->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
      delete cell;
  }

  std::uint64_t version_now() const {
    return cell ? cell->version.load(std::memory_order_seq_cst)
                : version.load(std::memory_order_seq_cst);
  }

  // Stamp a pending version with `t`; loses to any concurrent stamp.
  void stamp(std::uint64_t t) {
    std::uint64_t expected = kPendingVersion;
    if (cell)
      cell->version.compare_exchange_strong(expected, t,
                                            std::memory_order_seq_cst);
    else
      version.compare_exchange_strong(expected, t, std::memory_order_seq_cst);
  }

  // Readers may stamp only revisions whose publish completed at one CAS:
  // plain single-rev installs, and split parts (their cell is marked
  // helpable). Batch/merge cells stay writer-stamped — a reader-side stamp
  // would linearize a multi-CAS operation before its installs finish.
  bool reader_may_stamp() const {
    if (cell) return cell->helpable;
    return kind == RevKind::kPlain;
  }

  template <class Less>
  const Entry* find_binary(const K& k, const Less& less) const {
    auto it = std::lower_bound(
        entries.begin(), entries.end(), k,
        [&](const Entry& e, const K& key) { return less(e.first, key); });
    if (it == entries.end() || less(k, it->first)) return nullptr;
    return &*it;
  }

  // Hash-index lookup (§3.3.5): probe the key's two slots. An empty slot is
  // a definitive miss (a key is only dropped from the table when its bucket
  // is full), and so is a full bucket with no tag match unless that bucket
  // overflowed during the build — only then fall back to binary search.
  template <class Less>
  const Entry* find(const K& k, std::uint16_t h16, const Less& less) const {
    if (!hslots.empty()) {
      const std::uint32_t bucket = static_cast<std::uint32_t>(h16) & hmask;
      const std::uint32_t base = bucket * 2;
      for (int s = 0; s < 2; ++s) {
        const std::uint32_t slot = hslots[base + s];
        if (slot == kEmptySlot) return nullptr;
        if ((slot >> 16) == h16) {
          const Entry& e = entries[slot & 0xFFFFu];
          if (!less(e.first, k) && !less(k, e.first)) return &e;
        }
      }
      if (!((hoverflow[bucket >> 6] >> (bucket & 63)) & 1)) return nullptr;
    }
    return find_binary(k, less);
  }

  static void unref(Revision* r, bool immediate = false) {
    if (r->link_refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (immediate)
        delete r;
      else
        ebr::retire(r);
    }
  }
};

// Builds a revision from entries emitted in ascending key order, then seals
// it (optionally constructing the hash index) in finish().
template <class K, class V, class Hash = std::hash<K>>
class RevisionBuilder {
 public:
  using Rev = Revision<K, V>;

  RevisionBuilder(RevKind kind, std::uint32_t capacity,
                  std::uint64_t version = kPendingVersion,
                  bool hash_index = true)
      : rev_(new Rev), hash_index_(hash_index) {
    rev_->kind = kind;
    rev_->version.store(version, std::memory_order_relaxed);
    rev_->entries.reserve(capacity);
  }

  ~RevisionBuilder() { delete rev_; }

  void emit(K k, V v) {
    rev_->entries.emplace_back(std::move(k), std::move(v));
  }

  std::uint32_t count() const {
    return static_cast<std::uint32_t>(rev_->entries.size());
  }

  Rev* finish() {
    Rev* r = rev_;
    rev_ = nullptr;
    const std::size_t n = r->entries.size();
    if (hash_index_ && n > 0 && n <= 0xFFFF) {
      std::uint32_t buckets = 4;
      while (buckets < n) buckets <<= 1;
      r->hmask = buckets - 1;
      r->hslots.assign(static_cast<std::size_t>(buckets) * 2,
                       Rev::kEmptySlot);
      r->hoverflow.assign((buckets + 63) / 64, 0);
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint16_t tag = fold_hash16(Hash{}(r->entries[i].first));
        const std::uint32_t bucket = static_cast<std::uint32_t>(tag) & r->hmask;
        const std::uint32_t base = bucket * 2;
        if (r->hslots[base] == Rev::kEmptySlot)
          r->hslots[base] = (static_cast<std::uint32_t>(tag) << 16) | i;
        else if (r->hslots[base + 1] == Rev::kEmptySlot)
          r->hslots[base + 1] = (static_cast<std::uint32_t>(tag) << 16) | i;
        else {
          // Bucket full: this key is findable only by binary search; mark
          // the bucket so only its misses pay the fallback.
          r->hoverflow[bucket >> 6] |= 1ull << (bucket & 63);
        }
      }
    }
    return r;
  }

 private:
  Rev* rev_;
  bool hash_index_;
};

// A fat node: a key range plus the head of its revision chain. `next[0]` is
// the bottom-level list; higher next slots form the search tower. Nodes are
// never removed, so towers need no marks. (The paper's backward links, for
// reverse scans, are deferred until a consumer lands — see ROADMAP.)
template <class K, class V>
struct JiffyNode {
  static constexpr int kMaxHeight = 20;

  const int height;
  const bool is_head;
  const K anchor;
  std::atomic<std::uint64_t> birth{kPendingVersion};
  std::atomic<Revision<K, V>*> rev{nullptr};
  std::vector<std::atomic<JiffyNode*>> next;

  JiffyNode(int h, bool head, K a)
      : height(h), is_head(head), anchor(std::move(a)), next(h) {}
};

struct JiffyConfig {
  struct Autoscaler {
    bool enabled = true;
    std::uint32_t fixed_size = 128;  // revision size cap when disabled
    std::uint32_t min_size = 48;     // target at 0% reads
    std::uint32_t max_size = 224;    // target at 100% reads
    double tau_s = 0.5;              // EMA time constant (paper: ~1-10 s
                                     // adjustment; scaled to small runs)
    double interval_s = 0.05;        // min recompute interval
  } autoscaler;
  bool hash_index = true;
};

// Time-weighted EMA of the read fraction driving the revision-size target
// (§3.3.6). Ops are sampled 1-in-16 through a thread-local counter so the
// shared counters are off the per-op fast path.
class RevisionAutoscaler {
 public:
  explicit RevisionAutoscaler(const JiffyConfig::Autoscaler& cfg)
      : cfg_(cfg) {
    target_.store(cfg_.enabled ? (cfg_.min_size + cfg_.max_size) / 2
                               : cfg_.fixed_size,
                  std::memory_order_relaxed);
    ema_.store(0.5, std::memory_order_relaxed);
    last_ns_.store(now_ns(), std::memory_order_relaxed);
  }

  std::uint32_t target() const {
    return target_.load(std::memory_order_relaxed);
  }

  double read_fraction_ema() const {
    return ema_.load(std::memory_order_relaxed);
  }

  void note(bool is_read, std::uint64_t weight = 1) {
    if (!cfg_.enabled) return;
    thread_local std::uint32_t tick = 0;
    if ((tick++ & 15u) != 0 && weight == 1) return;
    const std::uint64_t w = weight == 1 ? 16 : weight;
    (is_read ? reads_ : writes_).fetch_add(w, std::memory_order_relaxed);
    maybe_update();
  }

 private:
  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void maybe_update() {
    const std::uint64_t now = now_ns();
    std::uint64_t last = last_ns_.load(std::memory_order_relaxed);
    const auto interval_ns =
        static_cast<std::uint64_t>(cfg_.interval_s * 1e9);
    if (now - last < interval_ns) return;
    if (!last_ns_.compare_exchange_strong(last, now,
                                          std::memory_order_relaxed))
      return;  // someone else owns this update window
    const std::uint64_t r = reads_.exchange(0, std::memory_order_relaxed);
    const std::uint64_t w = writes_.exchange(0, std::memory_order_relaxed);
    if (r + w == 0) return;
    const double rf = static_cast<double>(r) / static_cast<double>(r + w);
    const double dt = static_cast<double>(now - last) * 1e-9;
    const double alpha = 1.0 - std::exp(-dt / cfg_.tau_s);
    double ema = ema_.load(std::memory_order_relaxed);
    ema += alpha * (rf - ema);
    ema_.store(ema, std::memory_order_relaxed);
    const double t = cfg_.min_size + ema * (cfg_.max_size - cfg_.min_size);
    target_.store(static_cast<std::uint32_t>(t + 0.5),
                  std::memory_order_relaxed);
  }

  JiffyConfig::Autoscaler cfg_;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> last_ns_{0};
  std::atomic<double> ema_{0.5};
  std::atomic<std::uint32_t> target_{128};
};

template <class MapT>
class Snapshot;

template <class K, class V, class Less = std::less<K>,
          class Hash = std::hash<K>, class Clock = TscClock>
class JiffyMap {
 public:
  using key_type = K;
  using mapped_type = V;
  using Rev = Revision<K, V>;
  using Node = JiffyNode<K, V>;
  using Entry = typename Rev::Entry;
  using SnapshotT = Snapshot<JiffyMap>;

  JiffyMap() : JiffyMap(JiffyConfig{}) {}

  explicit JiffyMap(const JiffyConfig& cfg)
      : cfg_(cfg), scaler_(cfg.autoscaler) {
    head_ = new Node(Node::kMaxHeight, /*head=*/true, K{});
    RevisionBuilder<K, V, Hash> b(RevKind::kPlain, 0, /*version=*/0,
                                  cfg_.hash_index);
    head_->rev.store(b.finish(), std::memory_order_release);
    head_->birth.store(0, std::memory_order_release);
  }

  ~JiffyMap() {
    Node* x = head_;
    while (x) {
      Rev* r = x->rev.load(std::memory_order_relaxed);
      Node* nxt = x->next[0].load(std::memory_order_relaxed);
      Rev::unref(r, /*immediate=*/true);
      delete x;
      x = nxt;
    }
    ebr::quiesce();
  }

  JiffyMap(const JiffyMap&) = delete;
  JiffyMap& operator=(const JiffyMap&) = delete;

  // ---- single-key operations ----------------------------------------------

  // Insert or overwrite. Returns true if the key was newly inserted.
  bool put(const K& k, const V& v) {
    scaler_.note(/*is_read=*/false);
    ebr::Guard g;
    for (;;) {
      auto [x, r] = locate(k);
      if (wait_writable(x, r) != r) continue;  // head moved: re-route
      if (r->kind == RevKind::kAbsorbed) continue;  // merge committed here
      const Entry* hit = r->find_binary(k, less_);
      const std::uint32_t n = static_cast<std::uint32_t>(r->entries.size());
      const std::uint32_t newn = hit ? n : n + 1;
      const std::uint32_t maxsz = effective_max_size();
      if (newn > maxsz && newn >= 4) {
        if (install_split(x, r, &k, &v)) return !hit;
        continue;
      }
      RevisionBuilder<K, V, Hash> b(RevKind::kPlain, newn, kPendingVersion,
                                    cfg_.hash_index);
      bool placed = false;
      for (const Entry& e : r->entries) {
        if (!placed && less_(k, e.first)) {
          b.emit(k, v);
          placed = true;
        }
        if (!placed && !less_(e.first, k)) {  // e.first == k: overwrite
          b.emit(k, v);
          placed = true;
          continue;
        }
        b.emit(e.first, e.second);
      }
      if (!placed) b.emit(k, v);  // k after all entries
      Rev* nr = b.finish();
      nr->prev = r;
      if (install_plain(x, r, nr)) {
        maybe_merge(x);
        return !hit;
      }
      Rev::unref(nr, /*immediate=*/true);
    }
  }

  // Remove. Returns true if the key was present.
  bool erase(const K& k) {
    scaler_.note(/*is_read=*/false);
    ebr::Guard g;
    for (;;) {
      auto [x, r] = locate(k);
      if (wait_writable(x, r) != r) continue;  // head moved: re-route
      if (r->kind == RevKind::kAbsorbed) continue;  // merge committed here
      if (!r->find_binary(k, less_)) return false;
      RevisionBuilder<K, V, Hash> b(
          RevKind::kPlain, static_cast<std::uint32_t>(r->entries.size()) - 1,
          kPendingVersion, cfg_.hash_index);
      for (const Entry& e : r->entries)
        if (less_(e.first, k) || less_(k, e.first)) b.emit(e.first, e.second);
      Rev* nr = b.finish();
      nr->prev = r;
      if (install_plain(x, r, nr)) {
        maybe_merge(x);
        return true;
      }
      Rev::unref(nr, /*immediate=*/true);
    }
  }

  std::optional<V> get(const K& k) const {
    scaler_.note(/*is_read=*/true);
    ebr::Guard g;
    for (;;) {
      auto [x, r] = locate(k);
      // A pending batch/merge revision is not linearized yet: read the
      // state before it through prev (its predecessor is always stamped).
      while (r && r->kind != RevKind::kPlain &&
             r->version_now() == kPendingVersion)
        r = r->prev;
      if (!r) return std::nullopt;
      // locate() may hand us a merge marker that was pending then and got
      // stamped since: the merge committed and k now lives in the absorber,
      // so re-route rather than miss on the marker's empty array.
      if (r->kind == RevKind::kAbsorbed) continue;
      // Help stamp a pending plain head before returning its contents:
      // otherwise a snapshot taken after this get could be versioned below
      // the (late) stamp and miss a value the get already observed.
      if (r->version_now() == kPendingVersion && r->reader_may_stamp())
        r->stamp(clock_.read());
      const Entry* e = r->find(k, fold_hash16(hash_(k)), less_);
      if (!e) return std::nullopt;
      return e->second;
    }
  }

  bool contains(const K& k) const { return get(k).has_value(); }

  // ---- batch updates (§3.4) -----------------------------------------------

  // Apply all operations atomically: a concurrent reader observes either
  // none or all of them (per-key last-wins within the batch).
  void batch(std::vector<BatchOp<K, V>> ops) {
    if (ops.empty()) return;
    scaler_.note(/*is_read=*/false, ops.size());
    std::stable_sort(ops.begin(), ops.end(),
                     [&](const BatchOp<K, V>& a, const BatchOp<K, V>& b) {
                       return less_(a.key, b.key);
                     });
    // Last-wins dedupe: keep the final op for each key.
    std::size_t w = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (i + 1 < ops.size() && !less_(ops[i].key, ops[i + 1].key) &&
          !less_(ops[i + 1].key, ops[i].key))
        continue;
      ops[w++] = std::move(ops[i]);
    }
    ops.resize(w);

    ebr::Guard g;
    auto* cell = new VersionCell;
    cell->helpable = false;
    // The writer holds its own reference: a failed install CAS destroys the
    // discarded revision, and without this the destructor could free the
    // cell out from under the rest of the batch.
    cell->refs.store(1, std::memory_order_relaxed);
    std::vector<Rev*> replaced;
    std::size_t i = 0;
    while (i < ops.size()) {
      auto [x, r] = locate(ops[i].key);
      // With tombstones in the list a later group can re-route to a node we
      // already installed into (our pending revision still heads it). Build
      // on top of our own revision — both share the cell, so they linearize
      // together — instead of waiting on ourselves.
      if (r->cell != cell) {
        if (wait_writable(x, r) != r) continue;  // head moved: re-route
        if (r->kind == RevKind::kAbsorbed) continue;  // merge committed here
      }
      Node* nxt = x->next[0].load(std::memory_order_seq_cst);
      // The group [i, j) is every op routed to x's range. Installs proceed
      // in ascending key order, so two overlapping batches cannot wait on
      // each other's pending revisions in a cycle.
      std::size_t j = i + 1;
      while (j < ops.size() && (!nxt || less_(ops[j].key, nxt->anchor))) ++j;
      Rev* nr = build_batch_rev(r, ops, i, j, cell);
      if (!x->rev.compare_exchange_strong(r, nr, std::memory_order_seq_cst)) {
        Rev::unref(nr, /*immediate=*/true);
        continue;  // lost the race: re-locate this group
      }
      replaced.push_back(r);
      i = j;
    }
    std::uint64_t expected = kPendingVersion;
    cell->version.compare_exchange_strong(expected, clock_.read(),
                                          std::memory_order_seq_cst);
    for (Rev* old : replaced) Rev::unref(old);
    release_cell(cell);
  }

  // ---- scans and snapshots ------------------------------------------------

  // Visit up to `n` entries with key >= from, in order, at one consistent
  // version. Returns the number visited.
  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    scaler_.note(/*is_read=*/true, n ? n : 1);
    ebr::Guard g;
    const std::uint64_t v = clock_.read();
    return scan_at(from, n, v, std::forward<F>(f));
  }

  SnapshotT snapshot() const { return SnapshotT(this); }

  // ---- introspection ------------------------------------------------------

  struct DebugStats {
    double avg_revision_size = 0;
    std::size_t node_count = 0;
    std::size_t entry_count = 0;
    std::uint32_t target_revision_size = 0;
    double read_fraction_ema = 0;
  };

  DebugStats debug_stats() const {
    ebr::Guard g;
    DebugStats s;
    s.target_revision_size = effective_max_size();
    s.read_fraction_ema = scaler_.read_fraction_ema();
    for (Node* x = head_; x;) {
      Rev* r = x->rev.load(std::memory_order_seq_cst);
      if (r->sibling) ensure_link(x, r);
      if (r->kind != RevKind::kAbsorbed &&
          (!x->is_head || !r->entries.empty())) {
        ++s.node_count;
        s.entry_count += r->entries.size();
      }
      x = x->next[0].load(std::memory_order_seq_cst);
    }
    if (s.node_count)
      s.avg_revision_size = static_cast<double>(s.entry_count) /
                            static_cast<double>(s.node_count);
    return s;
  }

  std::size_t size_slow() const {
    ebr::Guard g;
    std::size_t n = 0;
    for (Node* x = head_; x;) {
      Rev* r = x->rev.load(std::memory_order_seq_cst);
      if (r->sibling) ensure_link(x, r);
      n += r->entries.size();
      x = x->next[0].load(std::memory_order_seq_cst);
    }
    return n;
  }

 private:
  friend class Snapshot<JiffyMap>;

  // ---- location -----------------------------------------------------------

  // Complete a pending split link: swing x->next[0] from the pre-split
  // successor to the first new sibling (exactly-once by CAS from the
  // recorded expected value; the chain of new nodes was pre-linked).
  void ensure_link(Node* x, Rev* r) const {
    Node* expect = r->link_expect;
    x->next[0].compare_exchange_strong(expect, r->sibling,
                                       std::memory_order_seq_cst);
  }

  // Level-0 node owning k under current routing, plus the revision used for
  // the routing decision (callers CAS against it, so stale reads retry).
  // Absorbed tombstones are skipped: their content lives in the nearest live
  // node to the left, which is exactly the node this walk remembers.
  std::pair<Node*, Rev*> locate(const K& k) const {
    for (;;) {
      Node* x = head_;
      for (int l = Node::kMaxHeight - 1; l >= 1; --l) {
        for (Node* nxt = x->next[l].load(std::memory_order_acquire);
             nxt && !less_(k, nxt->anchor);
             nxt = x->next[l].load(std::memory_order_acquire))
          x = nxt;
      }
      // A node counts as dead only once its marker is STAMPED (merge
      // committed). A pending marker may still be rolled back, so its node
      // must keep owning its range; writers routed there wait the marker
      // out in wait_writable and re-route if the merge commits.
      auto dead = [](Rev* r) {
        return r->kind == RevKind::kAbsorbed &&
               r->version_now() != kPendingVersion;
      };
      // The tower may land on a tombstone; hop left to its absorber (each
      // hop goes strictly left, so this terminates).
      Rev* r = x->rev.load(std::memory_order_seq_cst);
      while (dead(r)) {
        x = r->home;
        r = x->rev.load(std::memory_order_seq_cst);
      }
      if (r->sibling) ensure_link(x, r);
      Node* live = x;
      for (Node* cur = live->next[0].load(std::memory_order_seq_cst);
           cur && !less_(k, cur->anchor);
           cur = cur->next[0].load(std::memory_order_seq_cst)) {
        Rev* rc = cur->rev.load(std::memory_order_seq_cst);
        if (rc->sibling) ensure_link(cur, rc);
        if (!dead(rc)) live = cur;
      }
      // Re-read the chosen head: if the node died or split since we passed
      // it, the routing decision may be stale — retry from the top.
      Rev* now = live->rev.load(std::memory_order_seq_cst);
      if (dead(now)) continue;
      if (now->sibling) {
        ensure_link(live, now);
        Node* nxt = live->next[0].load(std::memory_order_seq_cst);
        if (nxt && !less_(k, nxt->anchor)) continue;  // sibling owns k
      }
      return {live, now};
    }
  }

  // Writers must start from a stamped, non-batch-pending head revision:
  // waiting out a pending batch keeps batch atomicity (a successor built
  // from an unstamped batch revision would leak it early), and stamping a
  // pending plain head keeps per-node version chains monotonic. Returns the
  // current head so the caller can detect that routing went stale and
  // re-locate.
  Rev* wait_writable(Node* x, Rev* r) const {
    for (;;) {
      if (r->version_now() != kPendingVersion)
        return x->rev.load(std::memory_order_seq_cst);
      if (r->reader_may_stamp()) {
        r->stamp(clock_.read());
        continue;
      }
      // Pending batch/merge: wait for its stamp, but keep re-reading the
      // head — an aborted merge replaces its marker without ever stamping
      // it, and spinning on the dead revision alone would hang.
      Rev* cur = x->rev.load(std::memory_order_seq_cst);
      if (cur != r) return cur;
      cpu_relax();
    }
  }

  // ---- installs -----------------------------------------------------------

  bool install_plain(Node* x, Rev* r, Rev* nr) {
    if (!x->rev.compare_exchange_strong(r, nr, std::memory_order_seq_cst))
      return false;
    nr->stamp(clock_.read());
    Rev::unref(r);  // retire strictly after the successor's stamp
    return true;
  }

  // Split x's content (plus the pending put of *k, if any) into parts of at
  // most max size: part 0 replaces x's revision, the rest become new nodes
  // published atomically through the revision's sibling pointer.
  bool install_split(Node* x, Rev* r, const K* k, const V* v) {
    std::vector<Entry> merged;
    merged.reserve(r->entries.size() + 1);
    bool placed = (k == nullptr);
    for (const Entry& e : r->entries) {
      if (!placed && less_(*k, e.first)) {
        merged.emplace_back(*k, *v);
        placed = true;
      }
      if (!placed && !less_(e.first, *k)) {  // equal: overwrite
        merged.emplace_back(*k, *v);
        placed = true;
        continue;
      }
      merged.push_back(e);
    }
    if (!placed) merged.emplace_back(*k, *v);

    const std::uint32_t total = static_cast<std::uint32_t>(merged.size());
    const std::uint32_t maxsz = std::max<std::uint32_t>(effective_max_size(), 2);
    std::uint32_t nparts = (total + maxsz - 1) / maxsz;
    if (nparts < 2) nparts = 2;
    const std::uint32_t per = total / nparts;
    const std::uint32_t rem = total % nparts;

    auto* cell = new VersionCell;  // helpable: one CAS publishes everything
    Node* old_next = x->next[0].load(std::memory_order_seq_cst);

    std::vector<std::pair<std::uint32_t, std::uint32_t>> parts;  // [lo, hi)
    // Append pattern (ascending bulk load): an even split would leave a
    // trail of half-full revisions behind the insertion front. Split
    // asymmetrically instead — keep the left part ~7/8 full — so loaded
    // ranges stay dense.
    if (k && nparts == 2 && !r->entries.empty() &&
        less_(r->entries.back().first, *k)) {
      const std::uint32_t left =
          std::min<std::uint32_t>(total - 1, (maxsz / 8) * 7);
      if (left > 0 && total - left <= maxsz) {
        parts.emplace_back(0, left);
        parts.emplace_back(left, total);
      }
    }
    if (parts.empty()) {
      std::uint32_t lo = 0;
      for (std::uint32_t p = 0; p < nparts; ++p) {
        const std::uint32_t sz = per + (p < rem ? 1 : 0);
        parts.emplace_back(lo, lo + sz);
        lo += sz;
      }
    }
    nparts = static_cast<std::uint32_t>(parts.size());
    Node* chain = old_next;
    std::vector<Node*> new_nodes;
    for (std::uint32_t p = nparts; p-- > 1;) {
      auto [plo, phi] = parts[p];
      RevisionBuilder<K, V, Hash> b(RevKind::kPlain, phi - plo,
                                    kPendingVersion, cfg_.hash_index);
      for (std::uint32_t e = plo; e < phi; ++e)
        b.emit(merged[e].first, merged[e].second);
      Rev* rp = b.finish();
      rp->cell = cell;
      cell->refs.fetch_add(1, std::memory_order_relaxed);
      auto* m = new Node(random_height(), /*head=*/false, merged[plo].first);
      m->rev.store(rp, std::memory_order_relaxed);
      m->next[0].store(chain, std::memory_order_relaxed);
      chain = m;
      new_nodes.push_back(m);
    }
    RevisionBuilder<K, V, Hash> b0(RevKind::kPlain, parts[0].second,
                                   kPendingVersion, cfg_.hash_index);
    for (std::uint32_t e = parts[0].first; e < parts[0].second; ++e)
      b0.emit(merged[e].first, merged[e].second);
    Rev* rlow = b0.finish();
    rlow->cell = cell;
    cell->refs.fetch_add(1, std::memory_order_relaxed);
    rlow->prev = r;
    rlow->sibling = chain;
    rlow->link_expect = old_next;

    if (!x->rev.compare_exchange_strong(r, rlow, std::memory_order_seq_cst)) {
      for (Node* m : new_nodes) {
        Rev::unref(m->rev.load(std::memory_order_relaxed), true);
        delete m;
      }
      Rev::unref(rlow, /*immediate=*/true);  // last cell unref frees it
      return false;
    }
    ensure_link(x, rlow);
    rlow->stamp(clock_.read());
    const std::uint64_t b_v = cell->version.load(std::memory_order_seq_cst);
    for (Node* m : new_nodes) {
      m->birth.store(b_v, std::memory_order_seq_cst);
      index_insert(m);
    }
    Rev::unref(r);
    return true;
  }

  // Autoscaler growth path (§3.3.6): when x plus its successor together fit
  // comfortably under the target, absorb the successor. Two installs under
  // one shared VersionCell — an kAbsorbed tombstone at s and a kMerge union
  // at x — stamped once, so readers see the merge atomically. Entirely
  // opportunistic: any interference aborts (with a rollback of the marker
  // if only the first CAS had landed) rather than waiting, which keeps the
  // ascending-order no-deadlock argument for batches intact. The dead node
  // stays in the list as a tombstone: routing skips it and old snapshots
  // still reach its pre-merge chain through the marker's prev. Physical
  // unlink (and tower cleanup) needs oldest-active-snapshot tracking and is
  // left on the roadmap.
  void maybe_merge(Node* x) {
    const std::uint32_t target = effective_max_size();
    Rev* rx = x->rev.load(std::memory_order_seq_cst);
    if (rx->kind == RevKind::kAbsorbed || rx->sibling ||
        rx->version_now() == kPendingVersion)
      return;
    Node* s = x->next[0].load(std::memory_order_seq_cst);
    if (!s) return;
    Rev* rs = s->rev.load(std::memory_order_seq_cst);
    if (rs->kind == RevKind::kAbsorbed ||
        rs->version_now() == kPendingVersion)
      return;
    if (rs->sibling) ensure_link(s, rs);
    const std::size_t combined = rx->entries.size() + rs->entries.size();
    if (combined == 0 || combined > (target * 7) / 10 || combined > 0xFFFF)
      return;

    auto* cell = new VersionCell;
    cell->helpable = false;
    cell->refs.store(1, std::memory_order_relaxed);  // writer's reference

    auto* marker = new Rev;
    marker->kind = RevKind::kAbsorbed;
    marker->cell = cell;
    cell->refs.fetch_add(1, std::memory_order_relaxed);
    marker->prev = rs;
    marker->home = x;

    RevisionBuilder<K, V, Hash> b(RevKind::kMerge,
                                  static_cast<std::uint32_t>(combined),
                                  kPendingVersion, cfg_.hash_index);
    for (const Entry& e : rx->entries) b.emit(e.first, e.second);
    for (const Entry& e : rs->entries) b.emit(e.first, e.second);
    Rev* merged = b.finish();
    merged->cell = cell;
    cell->refs.fetch_add(1, std::memory_order_relaxed);
    merged->prev = rx;

    Rev* expect = rs;
    if (!s->rev.compare_exchange_strong(expect, marker,
                                        std::memory_order_seq_cst)) {
      Rev::unref(marker, /*immediate=*/true);
      Rev::unref(merged, /*immediate=*/true);
      release_cell(cell);
      return;
    }
    expect = rx;
    if (!x->rev.compare_exchange_strong(expect, merged,
                                        std::memory_order_seq_cst)) {
      // x changed under us: undo s by restoring its content over the
      // marker. Nobody else replaces a pending marker (writers spin on it,
      // other merges skip pending heads), so this CAS cannot fail.
      RevisionBuilder<K, V, Hash> rb(
          RevKind::kPlain, static_cast<std::uint32_t>(rs->entries.size()),
          kPendingVersion, cfg_.hash_index);
      for (const Entry& e : rs->entries) rb.emit(e.first, e.second);
      Rev* restore = rb.finish();
      restore->prev = marker;
      Rev* fe = marker;
      const bool restored = s->rev.compare_exchange_strong(
          fe, restore, std::memory_order_seq_cst);
      assert(restored);
      (void)restored;
      restore->stamp(clock_.read());
      Rev::unref(rs);     // retire strictly after the restore's stamp
      Rev::unref(marker);  // now chain-only; never stamped, always skipped
      Rev::unref(merged, /*immediate=*/true);
      release_cell(cell);
      return;
    }
    merged->stamp(clock_.read());  // one stamp publishes both sides
    Rev::unref(rx);
    Rev::unref(rs);
    release_cell(cell);
  }

  static void release_cell(VersionCell* c) {
    if (c->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete c;
  }

  Rev* build_batch_rev(Rev* r, const std::vector<BatchOp<K, V>>& ops,
                       std::size_t i, std::size_t j, VersionCell* cell) {
    RevisionBuilder<K, V, Hash> b(
        RevKind::kBatch,
        static_cast<std::uint32_t>(r->entries.size() + (j - i)),
        kPendingVersion, cfg_.hash_index);
    auto it = r->entries.begin();
    const auto end = r->entries.end();
    for (std::size_t o = i; o < j; ++o) {
      while (it != end && less_(it->first, ops[o].key)) {
        b.emit(it->first, it->second);
        ++it;
      }
      const bool exists =
          it != end && !less_(ops[o].key, it->first);  // it->first == key
      if (exists) ++it;
      if (ops[o].kind == BatchOp<K, V>::Kind::kPut)
        b.emit(ops[o].key, ops[o].value);
    }
    while (it != end) {
      b.emit(it->first, it->second);
      ++it;
    }
    Rev* nr = b.finish();
    nr->cell = cell;
    cell->refs.fetch_add(1, std::memory_order_relaxed);
    nr->prev = r;
    return nr;
  }

  // ---- versioned reads ----------------------------------------------------

  // Newest revision in r's chain with version <= v. Helps stamp pending
  // plain revisions (required for reclamation safety, see DESIGN.md §5);
  // pending batch revisions are not yet linearized and are skipped.
  Rev* visible_rev(Rev* r, std::uint64_t v) const {
    while (r) {
      std::uint64_t t = r->version_now();
      if (t == kPendingVersion && r->reader_may_stamp()) {
        r->stamp(clock_.read());
        t = r->version_now();
      }
      if (t <= v) return r;  // pending (== ~0) is never <= v
      r = r->prev;
    }
    return nullptr;
  }

  // Last node with anchor <= from that held its range at version v: born at
  // or before v (conservative: a node whose birth stamp is still propagating
  // is treated as too new, which only moves the scan start left, never loses
  // entries) and not yet absorbed at v (a node dead at v moved its content
  // into a node further left — starting at the tombstone would skip it).
  Node* position(const K& from, std::uint64_t v) const {
    auto held_range_at = [&](Node* n) {
      if (n->birth.load(std::memory_order_seq_cst) > v) return false;
      Rev* r = n->rev.load(std::memory_order_seq_cst);
      return !(r->kind == RevKind::kAbsorbed && r->version_now() <= v);
    };
    Node* x = head_;
    for (int l = Node::kMaxHeight - 1; l >= 1; --l) {
      for (Node* nxt = x->next[l].load(std::memory_order_acquire);
           nxt && !less_(from, nxt->anchor) && held_range_at(nxt);
           nxt = x->next[l].load(std::memory_order_acquire))
        x = nxt;
    }
    Node* best = x;
    for (Node* cur = x->next[0].load(std::memory_order_seq_cst);
         cur && !less_(from, cur->anchor);
         cur = cur->next[0].load(std::memory_order_seq_cst)) {
      Rev* r = cur->rev.load(std::memory_order_seq_cst);
      if (r->sibling) ensure_link(cur, r);
      if (held_range_at(cur)) best = cur;
    }
    return best;
  }

  // Consistent ordered visit of up to n entries >= from at version v.
  // Split overlap (an old full revision plus a sibling's copy visible in the
  // same window) is deduplicated by requiring strictly increasing keys.
  template <class F>
  std::size_t scan_at(const K& from, std::size_t n, std::uint64_t v,
                      F&& f) const {
    std::size_t emitted = 0;
    const K* last = nullptr;
    for (Node* x = position(from, v); x && emitted < n;) {
      Rev* head = x->rev.load(std::memory_order_seq_cst);
      if (head->sibling) ensure_link(x, head);
      if (Rev* r = visible_rev(head, v)) {
        auto it = std::lower_bound(
            r->entries.begin(), r->entries.end(), from,
            [&](const Entry& e, const K& key) { return less_(e.first, key); });
        for (; it != r->entries.end() && emitted < n; ++it) {
          if (last && !less_(*last, it->first)) continue;
          f(it->first, it->second);
          last = &it->first;
          ++emitted;
        }
      }
      x = x->next[0].load(std::memory_order_seq_cst);
    }
    return emitted;
  }

  std::optional<V> get_at(const K& k, std::uint64_t v) const {
    std::optional<V> out;
    scan_at(k, 1, v, [&](const K& key, const V& val) {
      if (!less_(k, key) && !less_(key, k)) out = val;
    });
    return out;
  }

  // ---- misc ---------------------------------------------------------------

  std::uint32_t effective_max_size() const {
    const std::uint32_t t = cfg_.autoscaler.enabled
                                ? scaler_.target()
                                : cfg_.autoscaler.fixed_size;
    return t < 2 ? 2 : t;
  }

  static int random_height() {
    thread_local std::uint64_t state =
        splitmix64(reinterpret_cast<std::uintptr_t>(&state) ^ 0xA5A5A5A5ull);
    state = splitmix64(state);
    int h = 1;
    std::uint64_t x = state;
    while ((x & 3) == 0 && h < Node::kMaxHeight) {  // p = 1/4
      ++h;
      x >>= 2;
    }
    return h;
  }

  // Link a freshly split node into tower levels 1..height-1. Only its
  // creator calls this; towers are insert-only so a plain CAS per level
  // suffices.
  void index_insert(Node* m) {
    for (int l = 1; l < m->height; ++l) {
      for (;;) {
        Node* pred = head_;
        for (int dl = Node::kMaxHeight - 1; dl >= l; --dl) {
          for (Node* nxt = pred->next[dl].load(std::memory_order_acquire);
               nxt && less_(nxt->anchor, m->anchor);
               nxt = pred->next[dl].load(std::memory_order_acquire))
            pred = nxt;
        }
        Node* succ = pred->next[l].load(std::memory_order_acquire);
        if (succ == m) break;
        m->next[l].store(succ, std::memory_order_relaxed);
        if (pred->next[l].compare_exchange_strong(
                succ, m, std::memory_order_seq_cst))
          break;
      }
    }
  }

  JiffyConfig cfg_;
  Less less_{};
  Hash hash_{};
  Clock clock_{};
  mutable RevisionAutoscaler scaler_;
  Node* head_;
};

// A consistent point-in-time view. Holds an EBR guard for its lifetime, so
// the revision chains backing `version()` stay reachable; keep snapshots
// short-lived or expect retired garbage to accumulate.
template <class MapT>
class Snapshot {
 public:
  explicit Snapshot(const MapT* m)
      : map_(m), version_(m->clock_.read()) {}

  std::uint64_t version() const { return version_; }

  std::optional<typename MapT::mapped_type> get(
      const typename MapT::key_type& k) const {
    return map_->get_at(k, version_);
  }

  template <class F>
  std::size_t scan_n(const typename MapT::key_type& from, std::size_t n,
                     F&& f) const {
    return map_->scan_at(from, n, version_, std::forward<F>(f));
  }

 private:
  const MapT* map_;
  ebr::Guard guard_;
  std::uint64_t version_;
};

}  // namespace jiffy
