// Jiffy: a lock-free ordered map with fat-node revisions, batch updates and
// snapshots (Kobus, Kokociński, Wojciechowski; PPoPP 2022).
//
// Layout (DESIGN.md has the full story):
//   * The bottom level is a linked list of *fat nodes*; each node owns a key
//     range [anchor, next->anchor) and points to an immutable Revision — a
//     sorted array of entries plus an optional two-slot hash index (§3.3.5).
//     A skip-list tower over the nodes (grown at node creation, never
//     removed) gives O(log n) node location.
//   * Every update builds a new revision and CASes the node's revision
//     pointer; the replaced revision stays reachable through `prev`, forming
//     a per-node version chain that snapshot readers walk.
//   * Versions are timestamps (tsc/clock.h). A new revision is installed
//     with a *pending* version and stamped right after the CAS; readers that
//     meet a pending plain revision help stamp it. Node splits install every
//     resulting revision under one shared VersionCell in a single CAS on the
//     old node (the new right-hand nodes hang off the revision's `sibling`
//     pointer until helped into the list), so a split is atomic.
//   * Batch updates (§3.4) are built through the typed Batch builder and
//     applied via apply(): one kBatch revision per affected node, installed
//     in ascending key order, all sharing a VersionCell that is stamped only
//     after the last install: the whole batch becomes visible atomically.
//     The sorted, deduplicated op list is published in a BatchDescriptor
//     hanging off the cell (the helping hook). Readers treat a pending batch
//     revision as not-yet-linearized and read through `prev`; writers that
//     meet a pending half-installed batch *help*: they replay
//     ops[installed..) from the descriptor through the same run_batch()
//     loop the owner uses, so a stalled (even killed) batch writer never
//     blocks anyone (DESIGN.md §6).
//   * Nodes carry backward links (the paper's list is doubly linked): `back`
//     is a best-effort hint to a strict list-predecessor, re-validated by a
//     forward walk, powering reverse cursors and rscan_n under the same
//     TSC-version visibility rules as forward scans.
//   * Replaced revisions are retired through EBR *after* their successor is
//     stamped; together with monotonic clock reads this guarantees a reader
//     never follows `prev` into memory retired before its guard began.
//   * Revision size is either fixed or driven by a time-weighted EMA of the
//     read fraction (§3.3.6): small revisions for update-heavy phases, large
//     ones for lookup-heavy phases.
//   * Merge tombstones are physically reclaimed by a cooperative purge()
//     pass once their death version drops below the oldest active version
//     ticket (snapshots, cursors, in-flight scans — see ebr::VersionTicket
//     and DESIGN.md §9). Until then routing skips them and old snapshots
//     keep reading through their markers.
//   * The protocol windows (install→stamp, marker→union, group→watermark)
//     carry named schedule points (schedule_points.h): free in release
//     builds, fault-injection hooks in test builds.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/block_cache.h"
#include "common/analysis.h"
#include "common/prefetch.h"
#include "common/striped_counter.h"
#include "core/schedule_points.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "ebr/ebr.h"
#include "tsc/clock.h"
#include "workload/keyvalue.h"
#include "workload/rng.h"

namespace jiffy {

inline constexpr std::uint64_t kPendingVersion = ~0ull;

// Bounded spin, then cede the CPU. The protocol windows writers wait out
// (a pending merge marker, a half-installed batch group) are a handful of
// instructions wide, so on a machine with free cores a short cpu_relax()
// spin wins — but when the window's owner has been *preempted* (always the
// case once threads outnumber cores; see the 1->8 thread sweeps in
// BENCH_RESULTS/), spinning burns the rest of a scheduler quantum doing
// nothing while the owner waits for a CPU. Yielding after a short spin
// hands the quantum to the owner instead, which is where the oversubscribed
// update-only scaling went. Stateful so the spin budget resets after every
// yield.
class SpinBackoff {
 public:
  void pause() {
    if (++spins_ >= kSpinLimit) {
      spins_ = 0;
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
  }

 private:
  static constexpr int kSpinLimit = 64;
  int spins_ = 0;
};

enum class RevKind : std::uint8_t {
  kPlain,     // single-key update (or split part)
  kBatch,     // member of an atomic batch (§3.4)
  kMerge,     // union revision absorbing the successor node (§3.3.6)
  kAbsorbed,  // tombstone marker: this node's content moved to rev->home
};

// Fold an arbitrary std::hash result to the 16-bit tag the revision hash
// index stores (std::hash<integral> is the identity, so mix here).
inline std::uint16_t fold_hash16(std::size_t h) {
  std::uint64_t x = h;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 29;
  return static_cast<std::uint16_t>(x ^ (x >> 16));
}

// Shared version for multi-revision atomic installs (splits and batches).
// `helpable` distinguishes splits (fully published by one CAS, so any reader
// may stamp) from batches (multi-CAS; only the batch writer stamps). A batch
// cell additionally owns the published BatchDescriptor (type-erased here so
// the cell stays untemplated); it is freed with the cell.
struct VersionCell {
  std::atomic<std::uint64_t> version{kPendingVersion};
  std::atomic<std::uint32_t> refs{0};
  bool helpable = true;
  void* batch = nullptr;
  void (*batch_deleter)(void*) = nullptr;

  ~VersionCell() {
    if (batch && batch_deleter) batch_deleter(batch);
  }
};

// Published description of an in-flight atomic batch (§3.4): the sorted,
// last-wins-deduplicated op list plus the install watermark. Reachable from
// any installed kBatch revision as rev->cell->batch — this is the helping
// hook: a thread blocked on a pending batch revision replays ops[installed..)
// itself through JiffyMap::run_batch instead of spinning. The watermark only
// ever moves forward, by compare-exchange, from one group boundary to the
// next (every mover learned the target boundary from the installed
// revision's batch_hi or computed it from the same stable successor), so
// racing helpers agree on every transition.
template <class K, class V>
struct BatchDescriptor {
  std::vector<BatchOp<K, V>> ops;
  std::atomic<std::size_t> installed{0};  // ops[0, installed) have revisions

  static void destroy(void* p) { delete static_cast<BatchDescriptor*>(p); }
};

template <class K, class V>
struct JiffyNode;

// An immutable sorted entry array; the unit of update and of multiversioned
// reads. Published by a CAS on JiffyNode::rev and reclaimed through EBR once
// unref'd (`link_refs` counts head pointers, not `prev` edges: a `prev` edge
// may dangle after reclamation, but the version rule keeps readers off it).
//
// Entries live *inline*, directly after the struct in the same allocation
// (one less indirection per read): allocate() sizes the block, the builder
// placement-constructs entries, and the class-scope operator delete keeps
// plain `delete` (and EBR's deleter) freeing the whole block.
template <class K, class V>
struct Revision {
  using Entry = std::pair<K, V>;
  static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;

  RevKind kind = RevKind::kPlain;
  std::atomic<std::uint64_t> version{kPendingVersion};
  VersionCell* cell = nullptr;       // shared version (splits/batches/merges)
  Revision* prev = nullptr;          // the revision this one replaced
  JiffyNode<K, V>* sibling = nullptr;    // split: first new right-hand node
  JiffyNode<K, V>* link_expect = nullptr;  // split: next[0] value to CAS from
  JiffyNode<K, V>* home = nullptr;   // kAbsorbed: the node that absorbed us
  std::atomic<std::uint32_t> link_refs{1};
  std::uint32_t count = 0;           // constructed entries in the inline array
  std::uint32_t cap = 0;             // inline array capacity (allocation size)
  std::size_t batch_hi = 0;          // kBatch: end (excl.) of the op group
                                     // this revision applied — lets helpers
                                     // tell "group installed, watermark
                                     // lagging" from "earlier group stacked
                                     // here by a tombstone re-route"; same
                                     // width as BatchDescriptor::installed
                                     // so huge batches cannot wrap it
  std::uint32_t hmask = 0;  // hash bucket count - 1; 0 = no index built
  std::uint32_t alloc_bytes = 0;  // block size allocate() drew, for dispose()

  // The hash index lives *inline* after the entry array (DESIGN.md §14):
  // per-bucket overflow bitmap first (u64-aligned), then the 2-slots-per-
  // bucket table. One allocation per revision instead of three — the update
  // path's dominant malloc/free traffic — and a lookup touches index and
  // entries in one contiguous block instead of chasing two vector heads.
  // Layout is a pure function of `cap`, so the accessors need no extra
  // fields; allocate() reserves the space only when the builder wants an
  // index (cfg.hash_index) and the slot format can address every entry
  // (cap <= 0xFFFF: slots keep the entry index in their low 16 bits).

  static std::uint32_t index_buckets(std::uint32_t capacity) {
    std::uint32_t b = 4;
    while (b < capacity) b <<= 1;
    return b;
  }

  static constexpr std::size_t entry_offset() {
    return (sizeof(Revision) + alignof(Entry) - 1) / alignof(Entry) *
           alignof(Entry);
  }

  static std::size_t index_offset(std::uint32_t capacity) {
    return (entry_offset() + std::size_t{capacity} * sizeof(Entry) +
            alignof(std::uint64_t) - 1) &
           ~(alignof(std::uint64_t) - 1);
  }

  std::uint64_t* hoverflow_data() {
    return reinterpret_cast<std::uint64_t*>(
        reinterpret_cast<unsigned char*>(this) + index_offset(cap));
  }
  const std::uint64_t* hoverflow_data() const {
    return reinterpret_cast<const std::uint64_t*>(
        reinterpret_cast<const unsigned char*>(this) + index_offset(cap));
  }
  std::uint32_t* hslots_data() {
    return reinterpret_cast<std::uint32_t*>(hoverflow_data() +
                                            (index_buckets(cap) + 63) / 64);
  }
  const std::uint32_t* hslots_data() const {
    return reinterpret_cast<const std::uint32_t*>(
        hoverflow_data() + (index_buckets(cap) + 63) / 64);
  }

  Entry* entry_data() {
    return reinterpret_cast<Entry*>(reinterpret_cast<unsigned char*>(this) +
                                    entry_offset());
  }
  const Entry* entry_data() const {
    return reinterpret_cast<const Entry*>(
        reinterpret_cast<const unsigned char*>(this) + entry_offset());
  }

  const Entry* begin() const { return entry_data(); }
  const Entry* end() const { return entry_data() + count; }
  const Entry& entry(std::uint32_t i) const { return entry_data()[i]; }
  std::span<const Entry> entries() const { return {entry_data(), count}; }
  bool empty() const { return count == 0; }

  static Revision* allocate(std::uint32_t capacity, bool with_index = true) {
    // Plain ::operator new only guarantees the default alignment; the
    // inline array would silently misalign an over-aligned Entry type.
    static_assert(alignof(Entry) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "over-aligned key/value types need an aligned allocator");
    std::size_t bytes =
        entry_offset() + std::size_t{capacity} * sizeof(Entry);
    if (with_index && capacity <= 0xFFFF) {
      const std::uint32_t buckets = index_buckets(capacity);
      bytes = index_offset(capacity) +
              std::size_t{(buckets + 63) / 64} * sizeof(std::uint64_t) +
              std::size_t{buckets} * 2 * sizeof(std::uint32_t);
    }
    // Revisions cycle at op rate (every update builds one and retires one),
    // so draw from the per-thread block cache: the most recently disposed
    // same-class block comes back first, skipping the allocator round trip
    // the EBR delay would otherwise turn into a cold miss (DESIGN.md §14.3).
    bytes = ThreadBlockCache::usable_size(bytes);
    void* mem = ThreadBlockCache::allocate(bytes);
    auto* r = ::new (mem) Revision();
    r->cap = capacity;
    r->alloc_bytes = static_cast<std::uint32_t>(bytes);
    return r;
  }

  // The cache-aware free: every engine path funnels here (via unref). Reads
  // the block size before ending the object's lifetime, so the recycle needs
  // no out-of-band size map. Plain `delete` stays correct as a fallback —
  // operator delete below returns the block to the system allocator.
  static void dispose(Revision* r) {
    const std::size_t bytes = r->alloc_bytes;
    r->~Revision();
    ThreadBlockCache::deallocate(r, bytes);
  }

  static void operator delete(void* p) { ::operator delete(p); }

  ~Revision() {
    Entry* e = entry_data();
    for (std::uint32_t i = 0; i < count; ++i) e[i].~Entry();
    if (cell &&
        cell->refs.fetch_sub(1, std::memory_order_acq_rel) ==  // pairs: cell-refs
            1)
      delete cell;
  }

  std::uint64_t version_now() const {
    return cell
               ? cell->version.load(std::memory_order_seq_cst)  // pairs: version-stamp
               : version.load(std::memory_order_seq_cst);  // pairs: version-stamp
  }

  // Stamp a pending version with `t`; loses to any concurrent stamp.
  void stamp(std::uint64_t t) {
    std::uint64_t expected = kPendingVersion;
    if (cell)
      cell->version.compare_exchange_strong(
          expected, t, std::memory_order_seq_cst);  // pairs: version-stamp
    else
      version.compare_exchange_strong(
          expected, t, std::memory_order_seq_cst);  // pairs: version-stamp
  }

  // (Reader-side stamping policy lives in JiffyMap::try_help_stamp: plain
  // revisions and split parts always, batch revisions once their descriptor
  // reports every install done, merge revisions always — meeting one proves
  // the merge's second and final CAS landed. Pending kAbsorbed markers are
  // never stamped: their merge may still abort.)

  // Lower-bound position of k (first entry not less than k). Hand-rolled so
  // each halving step can prefetch the two possible next midpoints while the
  // current compare resolves (DESIGN.md §14): on the big lookup-heavy
  // revisions the autoscaler builds, the dependent-miss chain of a cold
  // binary search is the read path's dominant stall.
  template <class Less>
  const Entry* lower_bound_pos(const K& k, const Less& less) const {
    const Entry* lo = begin();
    std::size_t n = count;
    while (n > 8) {
      const std::size_t half = n / 2;
      prefetch_ro(lo + half / 2);                      // next mid, left half
      prefetch_ro(lo + half + (n - half) / 2);         // next mid, right half
      if (less(lo[half].first, k)) {
        lo += half + 1;
        n -= half + 1;
      } else {
        n = half;
      }
    }
    while (n > 0 && less(lo->first, k)) {
      ++lo;
      --n;
    }
    return lo;
  }

  template <class Less>
  const Entry* find_binary(const K& k, const Less& less) const {
    const Entry* it = lower_bound_pos(k, less);
    if (it == end() || less(k, it->first)) return nullptr;
    return it;
  }

  // Hash-index lookup (§3.3.5): probe the key's two slots. An empty slot is
  // a definitive miss (a key is only dropped from the table when its bucket
  // is full), and so is a full bucket with no tag match unless that bucket
  // overflowed during the build — only then fall back to binary search.
  template <class Less>
  const Entry* find(const K& k, std::uint16_t h16, const Less& less) const {
    if (hmask != 0) {
      const std::uint32_t* slots = hslots_data();
      const std::uint32_t bucket = static_cast<std::uint32_t>(h16) & hmask;
      const std::uint32_t base = bucket * 2;
      for (int s = 0; s < 2; ++s) {
        const std::uint32_t slot = slots[base + s];
        if (slot == kEmptySlot) return nullptr;
        if ((slot >> 16) == h16) {
          const Entry& e = entry_data()[slot & 0xFFFFu];
          if (!less(e.first, k) && !less(k, e.first)) return &e;
        }
      }
      if (!((hoverflow_data()[bucket >> 6] >> (bucket & 63)) & 1))
        return nullptr;
    }
    return find_binary(k, less);
  }

  static void unref(Revision* r, bool immediate = false) {
    if (r->link_refs.fetch_sub(1, std::memory_order_acq_rel) ==  // pairs: rev-refs
        1) {
      if (immediate) {
        obs::trace_retire(r, r->alloc_bytes, obs::RetireTag::kRevUnrefImmediate);
        dispose(r);
      } else {
        obs::trace_retire(r, r->alloc_bytes, obs::RetireTag::kRevUnref);
        ebr::retire_fn(r, [](void* q) {  // unlink: rev-unref
          dispose(static_cast<Revision*>(q));
        });
      }
    }
  }
};

// Builds a revision from entries emitted in ascending key order, then seals
// it (optionally constructing the hash index) in finish().
template <class K, class V, class Hash = std::hash<K>>
class RevisionBuilder {
 public:
  using Rev = Revision<K, V>;

  RevisionBuilder(RevKind kind, std::uint32_t capacity,
                  std::uint64_t version = kPendingVersion,
                  bool hash_index = true)
      : rev_(Rev::allocate(capacity, hash_index)), hash_index_(hash_index) {
    rev_->kind = kind;
    // relaxed: the revision is thread-private until the install CAS.
    rev_->version.store(version, std::memory_order_relaxed);
  }

  ~RevisionBuilder() {
    if (rev_) Rev::dispose(rev_);
  }

  void emit(K k, V v) {
    assert(rev_->count < rev_->cap);
    ::new (rev_->entry_data() + rev_->count)
        typename Rev::Entry(std::move(k), std::move(v));
    ++rev_->count;
  }

  std::uint32_t count() const { return rev_->count; }

  Rev* finish() {
    Rev* r = rev_;
    rev_ = nullptr;
    const std::uint32_t n = r->count;
    if (hash_index_ && n > 0 && n <= 0xFFFF) {
      // Build the index in the space allocate() reserved inline; the table
      // is sized by cap (== n for every engine build path), so the layout
      // accessors reproduce these addresses from cap alone.
      const std::uint32_t buckets = Rev::index_buckets(r->cap);
      r->hmask = buckets - 1;
      std::uint32_t* slots = r->hslots_data();
      std::uint64_t* overflow = r->hoverflow_data();
      std::fill_n(slots, std::size_t{buckets} * 2, Rev::kEmptySlot);
      std::fill_n(overflow, (buckets + 63) / 64, std::uint64_t{0});
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint16_t tag = fold_hash16(Hash{}(r->entry(i).first));
        const std::uint32_t bucket = static_cast<std::uint32_t>(tag) & r->hmask;
        const std::uint32_t base = bucket * 2;
        if (slots[base] == Rev::kEmptySlot)
          slots[base] = (static_cast<std::uint32_t>(tag) << 16) | i;
        else if (slots[base + 1] == Rev::kEmptySlot)
          slots[base + 1] = (static_cast<std::uint32_t>(tag) << 16) | i;
        else {
          // Bucket full: this key is findable only by binary search; mark
          // the bucket so only its misses pay the fallback.
          overflow[bucket >> 6] |= 1ull << (bucket & 63);
        }
      }
    }
    return r;
  }

 private:
  Rev* rev_;
  bool hash_index_;
};

// A fat node: a key range plus the head of its revision chain. `next[0]` is
// the bottom-level list; higher next slots form the search tower. Nodes are
// never removed, so towers need no marks.
//
// `back` makes the bottom level doubly linked (paper §3.1) for reverse
// cursors: a best-effort hint that always points to a *strict list
// predecessor* — nodes are never unlinked and never reordered, so every
// back edge moves strictly left in list position and back-chains terminate
// at the head. (Anchors usually shrink along a back edge too, but may tie
// with a tombstone's, or even grow when a merge victim's hint is later
// retargeted at a resplit part, so termination must not be argued from
// anchors.) The hint is not necessarily the immediate predecessor —
// pred_at() re-validates with a forward walk and tightens it.
template <class K, class V>
struct JiffyNode {
  static constexpr int kMaxHeight = 20;

  const int height;
  const bool is_head;
  const K anchor;
  std::atomic<std::uint64_t> birth{kPendingVersion};
  std::atomic<Revision<K, V>*> rev{nullptr};
  std::atomic<JiffyNode*> back{nullptr};
  // Link-structure generation observed when `back` was last validated: a
  // slow-path pred_at stamps the pre-walk generation after tightening the
  // hint, so a later reverse scan that sees back_gen == map.gen_ may try the
  // hint directly. The stamp is a staleness filter only — `back` and
  // `back_gen` are separate atomics racing writers can cross-pair, so the
  // fast path still self-validates the hint (next[0] == this && held_at)
  // before trusting it. See DESIGN.md §14.
  std::atomic<std::uint64_t> back_gen{0};
  // Set (once, never cleared) by the purge pass on a dead tombstone it is
  // about to unlink: writers that could otherwise re-publish a link to the
  // node check it first (install_split, pred_at). See DESIGN.md §9.
  std::atomic<bool> condemned{false};
  std::vector<std::atomic<JiffyNode*>> next;

  JiffyNode(int h, bool head, K a)
      : height(h), is_head(head), anchor(std::move(a)), next(h) {}
};

struct JiffyConfig {
  struct Autoscaler {
    bool enabled = true;
    std::uint32_t fixed_size = 128;  // revision size cap when disabled
    std::uint32_t min_size = 48;     // target at 0% reads
    std::uint32_t max_size = 224;    // target at 100% reads
    // Byte budgets bounding the entry-count targets above (DESIGN.md §14.2).
    // A put rebuilds its whole revision, so the *byte* size of a revision —
    // entry count x sizeof(Entry) — is what the write fast path actually
    // pays; the count targets were tuned for ~12B entries and turn into
    // multi-KB memcpys per update at 100B values. JiffyMap derives effective
    // min/max counts as min(count target, byte budget / sizeof(Entry)),
    // floored at 8/32 entries — a pure reduction, so explicit small configs
    // and small-entry workloads see exactly the counts configured here.
    std::uint32_t min_bytes = 576;   // 48 entries x 12B, the tuning point
    std::uint32_t max_bytes = 2688;  // 224 entries x 12B
    double tau_s = 0.5;              // EMA time constant (paper: ~1-10 s
                                     // adjustment; scaled to small runs)
    double interval_s = 0.05;        // min recompute interval
  } autoscaler;
  struct Reclaim {
    bool auto_purge = true;       // run purge() from the merge path when the
                                  // linked-shell count crosses `threshold`
    std::uint32_t threshold = 512;
  } reclaim;
  bool hash_index = true;
};

// Time-weighted EMA of the read fraction driving the revision-size target
// (§3.3.6). Ops are sampled 1-in-16 through a thread-local counter, and the
// sampled tallies land in a per-thread-sharded slot array (one cacheline per
// slot) instead of two process-global atomics — the EMA path touches shared
// memory only on refresh, when the window owner drains the slots. See
// DESIGN.md §14.
class RevisionAutoscaler {
 public:
  explicit RevisionAutoscaler(const JiffyConfig::Autoscaler& cfg)
      : cfg_(cfg) {
    // relaxed: constructor runs before the scaler is shared.
    target_.store(cfg_.enabled ? (cfg_.min_size + cfg_.max_size) / 2
                               : cfg_.fixed_size,
                  std::memory_order_relaxed);
    // relaxed: constructor runs before the scaler is shared.
    ema_.store(0.5, std::memory_order_relaxed);
    // relaxed: constructor runs before the scaler is shared.
    last_ns_.store(now_ns(), std::memory_order_relaxed);
  }

  std::uint32_t target() const {
    // relaxed: advisory sizing hint; any recent value is acceptable.
    return target_.load(std::memory_order_relaxed);
  }

  double read_fraction_ema() const {
    // relaxed: statistics readout; no ordering with other state needed.
    return ema_.load(std::memory_order_relaxed);
  }

  void note(bool is_read, std::uint64_t weight = 1) {
    if (!cfg_.enabled) return;
    thread_local std::uint32_t tick = 0;
    if ((tick++ & 15u) != 0 && weight == 1) return;
    const std::uint64_t w = weight == 1 ? 16 : weight;
    TallySlot& slot =
        tallies_[detail::thread_shard_id() & (kCounterShards - 1)];
    // relaxed: sampled per-shard op counter; only totals matter, not
    // ordering — the drain in maybe_update sums whatever landed.
    (is_read ? slot.reads : slot.writes).fetch_add(w,
                                                   std::memory_order_relaxed);
    maybe_update();
  }

 private:
  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void maybe_update() {
    const std::uint64_t now = now_ns();
    // relaxed: throttle timestamp; the CAS below arbitrates the window and
    // a stale read only skips one update.
    std::uint64_t last = last_ns_.load(std::memory_order_relaxed);
    const auto interval_ns =
        static_cast<std::uint64_t>(cfg_.interval_s * 1e9);
    if (now - last < interval_ns) return;
    // relaxed: mutual exclusion here is advisory — a lost update window
    // only delays the EMA, it cannot corrupt it.
    if (!last_ns_.compare_exchange_strong(last, now,
                                          std::memory_order_relaxed))
      return;  // someone else owns this update window
    std::uint64_t r = 0;
    std::uint64_t w = 0;
    for (TallySlot& s : tallies_) {
      // relaxed: approximate sample harvest; samples landing around the
      // exchange are counted in whichever window drains their slot next.
      r += s.reads.exchange(0, std::memory_order_relaxed);
      // relaxed: same approximate harvest as the reads exchange above.
      w += s.writes.exchange(0, std::memory_order_relaxed);
    }
    if (r + w == 0) return;
    const double rf = static_cast<double>(r) / static_cast<double>(r + w);
    const double dt = static_cast<double>(now - last) * 1e-9;
    const double alpha = 1.0 - std::exp(-dt / cfg_.tau_s);
    // relaxed: only the CAS winner writes ema_ in this window; readers
    // tolerate any recent value.
    double ema = ema_.load(std::memory_order_relaxed);
    ema += alpha * (rf - ema);
    // relaxed: see the load above — advisory statistic.
    ema_.store(ema, std::memory_order_relaxed);
    const double t = cfg_.min_size + ema * (cfg_.max_size - cfg_.min_size);
    // relaxed: advisory sizing hint consumed by target().
    target_.store(static_cast<std::uint32_t>(t + 0.5),
                  std::memory_order_relaxed);
  }

  // One cacheline of sampled tallies per thread shard: reads and writes for
  // a shard are written by the same thread, so they share a line on purpose;
  // distinct shards never do.
  struct alignas(kCacheLineBytes) TallySlot {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
  };
  static_assert(sizeof(TallySlot) == kCacheLineBytes,
                "tally slots must not share cachelines across shards");

  JiffyConfig::Autoscaler cfg_;
  TallySlot tallies_[kCounterShards];
  // last_ns_ is CAS-contended by every sampled op that crosses the refresh
  // interval; keep it off the line holding the read-mostly ema_/target_.
  CachePadded<std::atomic<std::uint64_t>> last_ns_pad_;
  std::atomic<std::uint64_t>& last_ns_ = last_ns_pad_.value;
  std::atomic<double> ema_{0.5};
  std::atomic<std::uint32_t> target_{128};
};

template <class MapT>
class Snapshot;

template <class MapT>
class SnapCursor;

template <class K, class V, class Less = std::less<K>,
          class Hash = std::hash<K>, class Clock = TscClock>
class JiffyMap {
 public:
  using key_type = K;
  using mapped_type = V;
  using Rev = Revision<K, V>;
  using Node = JiffyNode<K, V>;
  using Entry = typename Rev::Entry;
  using SnapshotT = Snapshot<JiffyMap>;

  JiffyMap() : JiffyMap(JiffyConfig{}) {}

  // Apply the autoscaler's byte budgets to its entry-count targets for this
  // map's sizeof(Entry) — reduction only, see JiffyConfig::Autoscaler.
  static JiffyConfig::Autoscaler byte_scaled(JiffyConfig::Autoscaler a) {
    const std::size_t e = sizeof(Entry);
    const auto by_min =
        static_cast<std::uint32_t>(std::max<std::size_t>(8, a.min_bytes / e));
    const auto by_max =
        static_cast<std::uint32_t>(std::max<std::size_t>(32, a.max_bytes / e));
    if (by_min < a.min_size) a.min_size = by_min;
    if (by_max < a.max_size) a.max_size = by_max;
    if (a.max_size < a.min_size) a.max_size = a.min_size;
    return a;
  }

  explicit JiffyMap(const JiffyConfig& cfg)
      : cfg_(cfg), scaler_(byte_scaled(cfg.autoscaler)) {
    // relaxed: constructor runs before the map is shared. Start at 1 so a
    // fresh node's zero-initialized back_gen can never match the live
    // generation before a slow-path pred_at has actually validated its hint.
    gen_.store(1, std::memory_order_relaxed);
    head_ = new Node(Node::kMaxHeight, /*head=*/true, K{});
    RevisionBuilder<K, V, Hash> b(RevKind::kPlain, 0, /*version=*/0,
                                  cfg_.hash_index);
    head_->rev.store(b.finish(), std::memory_order_release);  // pairs: rev-install
    head_->birth.store(0, std::memory_order_release);  // pairs: birth-stamp
  }

  ~JiffyMap() {
    // A condemned shell may still be reachable: purge()'s bounded loop can
    // exit with a re-published link (or a lost sweep CAS) left for "a later
    // call" that never came. Destruction is single-threaded, so sweeps make
    // monotonic progress — run them until clean, after which every pending
    // shell really is off the chain and safe to free before the walk below.
    if (!purge_pending_.empty()) {
      ebr::Guard g;
      g.assert_held();
      while (purge_sweep(g) != 0) {
      }
    }
    for (Node* n : purge_pending_) delete_dead_node(n);
    purge_pending_.clear();
    Node* x = head_;
    while (x) {
      // relaxed: single-threaded teardown; no concurrent access remains.
      Rev* r = x->rev.load(std::memory_order_relaxed);
      // relaxed: single-threaded teardown; no concurrent access remains.
      Node* nxt = x->next[0].load(std::memory_order_relaxed);
      Rev::unref(r, /*immediate=*/true);
      delete x;
      x = nxt;
    }
    ebr::quiesce();
  }

  JiffyMap(const JiffyMap&) = delete;
  JiffyMap& operator=(const JiffyMap&) = delete;

  // ---- single-key operations ----------------------------------------------

  // Insert or overwrite. Returns true if the key was newly inserted.
  bool put(const K& k, const V& v) {
    scaler_.note(/*is_read=*/false);
    ebr::Guard g;
    g.assert_held();
    // Install losses escalate to yield: a lost head CAS means another writer
    // landed on this node, and each retry re-copies the whole revision, so a
    // skewed workload on an oversubscribed core turns a hot node into a storm
    // of doomed multi-KB rebuilds. Two consecutive losses ⇒ donate the slice
    // to the contending writer instead of racing it. Uncontended puts never
    // lose, so the counter costs nothing on the fast path.
    for (int losses = 0;;) {
      auto [x, r] = locate(k, g);
      if (wait_writable(x, r, g) != r) continue;  // head moved: re-route
      if (r->kind == RevKind::kAbsorbed) continue;  // merge committed here
      const Entry* hit = r->find_binary(k, less_);
      const std::uint32_t n = r->count;
      const std::uint32_t newn = hit ? n : n + 1;
      const std::uint32_t maxsz = effective_max_size();
      if (newn > maxsz && newn >= 4) {
        if (install_split(x, r, &k, &v, g)) {
          if (!hit) size_.increment();  // sharded; see approx_size
          return !hit;
        }
        JIFFY_COUNT(cas_install_lost);
        if (++losses >= 2) std::this_thread::yield();
        continue;
      }
      RevisionBuilder<K, V, Hash> b(RevKind::kPlain, newn, kPendingVersion,
                                    cfg_.hash_index);
      bool placed = false;
      for (const Entry& e : r->entries()) {
        if (!placed && less_(k, e.first)) {
          b.emit(k, v);
          placed = true;
        }
        if (!placed && !less_(e.first, k)) {  // e.first == k: overwrite
          b.emit(k, v);
          placed = true;
          continue;
        }
        b.emit(e.first, e.second);
      }
      if (!placed) b.emit(k, v);  // k after all entries
      Rev* nr = b.finish();
      nr->prev = r;
      if (install_plain(x, r, nr, g)) {
        if (!hit) size_.increment();  // sharded; see approx_size
        maybe_merge(x, g);
        return !hit;
      }
      Rev::unref(nr, /*immediate=*/true);
      JIFFY_COUNT(cas_install_lost);
      if (++losses >= 2) std::this_thread::yield();
    }
  }

  // Remove. Returns true if the key was present.
  bool erase(const K& k) {
    scaler_.note(/*is_read=*/false);
    ebr::Guard g;
    g.assert_held();
    for (int losses = 0;;) {  // same loss escalation as put()
      auto [x, r] = locate(k, g);
      if (wait_writable(x, r, g) != r) continue;  // head moved: re-route
      if (r->kind == RevKind::kAbsorbed) continue;  // merge committed here
      if (!r->find_binary(k, less_)) return false;
      RevisionBuilder<K, V, Hash> b(RevKind::kPlain, r->count - 1,
                                    kPendingVersion, cfg_.hash_index);
      for (const Entry& e : r->entries())
        if (less_(e.first, k) || less_(k, e.first)) b.emit(e.first, e.second);
      Rev* nr = b.finish();
      nr->prev = r;
      if (install_plain(x, r, nr, g)) {
        size_.decrement();  // sharded; see approx_size
        maybe_merge(x, g);
        return true;
      }
      Rev::unref(nr, /*immediate=*/true);
      JIFFY_COUNT(cas_install_lost);
      if (++losses >= 2) std::this_thread::yield();
    }
  }

  std::optional<V> get(const K& k) const {
    scaler_.note(/*is_read=*/true);
    ebr::Guard g;
    g.assert_held();
    const Entry* e = find_live(k, g);
    if (!e) return std::nullopt;
    return e->second;
  }

  // Expert variant of get() for callers that already hold an EBR guard and
  // want to amortize the pin over a run of lookups. The annotation is load-
  // bearing: a -Wthread-safety build rejects any call site that cannot
  // prove `g` is held (tools/tests/fixture_unguarded.cpp is the negative
  // test).
  std::optional<V> get_pinned(const K& k, const ebr::Guard& g) const
      JIFFY_REQUIRES_GUARD(g) {
    scaler_.note(/*is_read=*/true);
    const Entry* e = find_live(k, g);
    if (!e) return std::nullopt;
    return e->second;
  }

  // Membership without materializing the value (V may be large).
  bool contains(const K& k) const {
    scaler_.note(/*is_read=*/true);
    ebr::Guard g;
    g.assert_held();
    return find_live(k, g) != nullptr;
  }

  // ---- batch updates (§3.4) -----------------------------------------------

  // Apply a Batch atomically: a concurrent reader observes either none or
  // all of its operations (per-key last-wins within the batch). The sorted,
  // deduplicated op list is published in a BatchDescriptor reachable from
  // every installed revision (rev->cell->batch) — the helping hook.
  void apply(Batch<K, V> b) {
    std::vector<BatchOp<K, V>> ops = std::move(b).take();
    if (ops.empty()) return;
    scaler_.note(/*is_read=*/false, ops.size());
    std::stable_sort(ops.begin(), ops.end(),
                     [&](const BatchOp<K, V>& a, const BatchOp<K, V>& b2) {
                       return less_(a.key, b2.key);
                     });
    // Last-wins dedupe: keep the final op for each key. (Guard the move:
    // self-move-assignment leaves containers valid-but-unspecified.)
    std::size_t w = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (i + 1 < ops.size() && !less_(ops[i].key, ops[i + 1].key) &&
          !less_(ops[i + 1].key, ops[i].key))
        continue;
      if (w != i) ops[w] = std::move(ops[i]);
      ++w;
    }
    ops.resize(w);

    ebr::Guard g;
    g.assert_held();
    auto* desc = new BatchDescriptor<K, V>;
    desc->ops = std::move(ops);
    auto* cell = new VersionCell;
    cell->helpable = false;
    cell->batch = desc;
    cell->batch_deleter = &BatchDescriptor<K, V>::destroy;
    // The writer holds its own reference: a failed install CAS destroys the
    // discarded revision, and without this the destructor could free the
    // cell out from under the rest of the batch.
    // relaxed: the cell is thread-private until the first install CAS.
    cell->refs.store(1, std::memory_order_relaxed);
    run_batch(desc, cell, g);
    release_cell(cell);
  }

  // ---- scans and snapshots ------------------------------------------------

  // Visit up to `n` entries with key >= from, in order, at one consistent
  // version. Returns the number visited.
  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    scaler_.note(/*is_read=*/true, n ? n : 1);
    ebr::Guard g;
    g.assert_held();
    ebr::VersionTicket t;  // sentinel lands before the clock read, so the
                           // purge watermark cannot pass the pinned version
    const std::uint64_t v = clock_.read();
    t.publish(v);
    t.assert_pinned();
    return scan_at(from, n, v, std::forward<F>(f), g, t);
  }

  // Visit up to `n` entries with key <= from, in descending order, at one
  // consistent version (the reverse of scan_n, over the backward links).
  template <class F>
  std::size_t rscan_n(const K& from, std::size_t n, F&& f) const {
    scaler_.note(/*is_read=*/true, n ? n : 1);
    ebr::Guard g;
    g.assert_held();
    ebr::VersionTicket t;
    const std::uint64_t v = clock_.read();
    t.publish(v);
    t.assert_pinned();
    return rscan_at(from, n, v, std::forward<F>(f), g, t);
  }

  // Visit every entry in the half-open range [lo, hi), in order, at one
  // consistent version. Returns the number visited.
  template <class F>
  std::size_t range_scan(const K& lo, const K& hi, F&& f) const {
    ebr::Guard g;
    g.assert_held();
    ebr::VersionTicket t;
    const std::uint64_t v = clock_.read();
    t.publish(v);
    t.assert_pinned();
    const std::size_t n = range_at(lo, hi, v, std::forward<F>(f), g, t);
    scaler_.note(/*is_read=*/true, n ? n : 1);
    return n;
  }

  SnapshotT snapshot() const { return SnapshotT(this); }

  // Approximate entry count, maintained by the update paths in a sharded
  // counter (O(kCounterShards) relaxed loads to aggregate — still constant,
  // and the update-side write touches only the caller's shard). Exact when
  // writers are quiescent; under churn transiently off by at most the ops in
  // flight during the aggregate sweep.
  std::size_t approx_size() const {
    const std::int64_t n = size_.read();
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }

  // ---- reclamation (DESIGN.md §9) -----------------------------------------

  // Physically reclaim merge tombstones no reader can need: a shell is
  // eligible once its kAbsorbed marker is stamped below the oldest active
  // version ticket (snapshots, cursors, in-flight scans — see
  // ebr::min_active_version). Cooperative and incremental; one pass runs at
  // a time (concurrent calls return 0) and a pass advances a small state
  // machine:
  //   collect  read every stamped tombstone's death version, THEN the
  //            watermark (that order makes a racing, unseen ticket's pinned
  //            version provably exceed every collected stamp — see
  //            purge_collect), and condemn the shells below it (flag set
  //            once, never cleared),
  //   sweep    splice condemned nodes out of level 0 and out of every tower
  //            slot of every node, and retarget back hints off them,
  //   drain    wait for the EBR epoch to advance twice past the sweep — any
  //            operation that read a pointer to a shell before it was
  //            condemned ran under a guard that has now ended, so every
  //            stale link such an operation may have re-published is in
  //            place by now,
  //   re-sweep until a sweep finds nothing to fix: a clean post-drain sweep
  //            proves no location holds a condemned pointer and (by
  //            induction: learning one requires loading it from somewhere)
  //            no live operation can re-publish one,
  //   retire   hand the shells to EBR.
  // Long-lived snapshots never block the unlink: they only hold the version
  // watermark, which keeps anything they can still read out of the pass
  // entirely; a guard held across a sweep merely postpones the drain to a
  // later call. Returns the number of shells retired by this call.
  std::size_t purge() {
    if (purging_.exchange(true, std::memory_order_acq_rel))  // pairs: purge-flag
      return 0;
    std::size_t retired = 0;
    for (int round = 0; round < 4; ++round) {
      {
        ebr::Guard g;
        g.assert_held();
        if (purge_pending_.empty()) {
          purge_collect(g);
          if (purge_pending_.empty()) break;  // nothing eligible
          purge_sweep(g);  // initial unlink; by construction not clean
          purge_epoch_ = ebr::current_epoch();
        } else if (ebr::current_epoch() >= purge_epoch_ + 2) {
          if (purge_sweep(g) == 0) {
            retired = purge_retire_pending(g);
            break;
          }
          purge_epoch_ = ebr::current_epoch();  // re-arm the drain
        }
      }
      // Drop our own pin and nudge the epoch: with no long-lived guards
      // active the drain completes within this call.
      ebr::quiesce();
      if (!purge_pending_.empty() &&
          ebr::current_epoch() < purge_epoch_ + 2)
        break;  // some guard still spans the sweep; a later call continues
    }
    purging_.store(false, std::memory_order_release);  // pairs: purge-flag
    return retired;
  }

  // ---- introspection ------------------------------------------------------

  struct DebugStats {
    double avg_revision_size = 0;
    std::size_t node_count = 0;
    std::size_t entry_count = 0;
    std::uint32_t target_revision_size = 0;
    double read_fraction_ema = 0;
    std::size_t tombstone_count = 0;  // stamped kAbsorbed shells still linked
    std::size_t dead_shell_estimate = 0;  // merge victims not yet retired
    std::uint64_t purged_total = 0;  // shells reclaimed over the lifetime
  };

  DebugStats debug_stats() const {
    DebugStats s;
    s.target_revision_size = effective_max_size();
    s.read_fraction_ema = scaler_.read_fraction_ema();
    // relaxed: diagnostic estimate; concurrent merges/purges skew it anyway.
    const std::int64_t shells = dead_shells_.load(std::memory_order_relaxed);
    s.dead_shell_estimate =
        shells > 0 ? static_cast<std::size_t>(shells) : 0;
    // relaxed: lifetime statistic; no ordering with other state needed.
    s.purged_total = purged_total_.load(std::memory_order_relaxed);
    for_each_level0([&](Node* x, Rev* r) {
      if (r->kind == RevKind::kAbsorbed) {
        if (r->version_now() != kPendingVersion) ++s.tombstone_count;
      } else if (!x->is_head || r->count != 0) {
        ++s.node_count;
        s.entry_count += r->count;
      }
    });
    if (s.node_count)
      s.avg_revision_size = static_cast<double>(s.entry_count) /
                            static_cast<double>(s.node_count);
    return s;
  }

  std::size_t size_slow() const {
    std::size_t n = 0;
    for_each_level0([&](Node*, Rev* r) { n += r->count; });
    return n;
  }

 private:
  friend class Snapshot<JiffyMap>;
  template <class MapT>
  friend class SnapCursor;

  // ---- location -----------------------------------------------------------

  // Complete a pending split link: swing x->next[0] from the pre-split
  // successor to the first new sibling (the chain of new nodes was
  // pre-linked). Fast path: exactly-once CAS from the recorded expected
  // value. That CAS can now fail forever without the link being done — the
  // purge pass unlinks condemned tombstones from level 0, moving next[0]
  // out from under the recorded expect — so fall back to forcing the link
  // from whatever the current value is, gated on r still heading x: while
  // it does, the only other writers of x->next[0] are helpers of this same
  // link and tombstone unlinking (both compose with this loop), and once r
  // is superseded the link is guaranteed complete, because every install
  // path runs ensure_link to success (via locate) before building on r.
  void ensure_link(Node* x, Rev* r, [[maybe_unused]] const ebr::Guard& g)
      const JIFFY_REQUIRES_GUARD(g) {
    Node* expect = r->link_expect;
    if (x->next[0].compare_exchange_strong(
            expect, r->sibling, std::memory_order_seq_cst))  // pairs: next-link
      return;
    for (;;) {
      Node* e = x->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
      if (e == r->sibling) return;  // linked (by us or a helper)
      if (x->rev.load(std::memory_order_seq_cst) != r)  // pairs: rev-install
        return;
      if (x->next[0].compare_exchange_strong(
              e, r->sibling, std::memory_order_seq_cst))  // pairs: next-link
        return;
    }
  }

  // Level-0 node owning k under current routing, plus the revision used for
  // the routing decision (callers CAS against it, so stale reads retry).
  // Absorbed tombstones are skipped: their content lives in the nearest live
  // node to the left, which is exactly the node this walk remembers.
  std::pair<Node*, Rev*> locate(const K& k, const ebr::Guard& g) const
      JIFFY_REQUIRES_GUARD(g) {
    for (;;) {
      Node* x = head_;
      for (int l = Node::kMaxHeight - 1; l >= 1; --l) {
        for (Node* nxt =
                 x->next[l].load(std::memory_order_acquire);  // pairs: next-link
             nxt && !less_(k, nxt->anchor);
             nxt = x->next[l].load(std::memory_order_acquire))  // pairs: next-link
          x = nxt;
        // Foresight (DESIGN.md §14): the next hop reads the same tower slot
        // one level down — warm its target's header while this level's loop
        // bookkeeping retires, hiding the dependent miss of the descent.
        // relaxed: the pointer feeds prefetch_ro only and is never
        // dereferenced; the traversal reload above carries the acquire edge.
        prefetch_ro(x->next[l - 1].load(std::memory_order_relaxed));
      }
      // A node counts as dead only once its marker is STAMPED (merge
      // committed). A pending marker may still be rolled back, so its node
      // must keep owning its range; writers routed there wait the marker
      // out in wait_writable and re-route if the merge commits.
      auto dead = [](Rev* r) {
        return r->kind == RevKind::kAbsorbed &&
               r->version_now() != kPendingVersion;
      };
      // The tower may land on a tombstone; hop left to its absorber (each
      // hop goes strictly left, so this terminates).
      Rev* r = x->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
      while (dead(r)) {
        x = r->home;
        r = x->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
      }
      if (r->sibling) ensure_link(x, r, g);
      Node* live = x;
      for (Node* cur =
               live->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
           cur && !less_(k, cur->anchor);
           cur = cur->next[0].load(std::memory_order_seq_cst)) {  // pairs: next-link
        // Foresight: overlap the next node's header miss with this node's
        // revision inspection (the revision pointer chase below).
        // relaxed: prefetch address only, never dereferenced here; the loop
        // re-reads the slot with its paired seq_cst load before following.
        prefetch_ro(cur->next[0].load(std::memory_order_relaxed));
        Rev* rc = cur->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
        if (rc->sibling) ensure_link(cur, rc, g);
        if (!dead(rc)) live = cur;
      }
      // Re-read the chosen head: if the node died or split since we passed
      // it, the routing decision may be stale — retry from the top.
      Rev* now = live->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
      if (dead(now)) continue;
      if (now->sibling) {
        ensure_link(live, now, g);
        Node* nxt =
            live->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
        if (nxt && !less_(k, nxt->anchor)) continue;  // sibling owns k
      }
      // Warm the inline entry array (begin() is pointer arithmetic off the
      // already-loaded revision pointer): every caller searches it next.
      prefetch_ro(now->begin());
      return {live, now};
    }
  }

  // Resume point for the chunked introspection walk: the first level-0 node
  // whose anchor is strictly greater than k, tombstones INCLUDED — locate()
  // cannot serve here because it hops off absorbed shells, which the stats
  // walk must count. Plain tower descent; anchors are immutable.
  Node* stats_resume(const K& k, const ebr::Guard& g) const
      JIFFY_REQUIRES_GUARD(g) {
    g.assert_held();
    Node* x = head_;
    for (int l = Node::kMaxHeight - 1; l >= 0; --l) {
      for (Node* nxt =
               x->next[l].load(std::memory_order_acquire);  // pairs: next-link
           nxt && !less_(k, nxt->anchor);
           nxt = x->next[l].load(std::memory_order_acquire))  // pairs: next-link
        x = nxt;
    }
    return x->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
  }

  // Level-0 walk over every node (tombstones included) for the introspection
  // paths, chunked so no single ebr::Guard pins the epoch across the whole
  // map: after ~kChunkNodes nodes the guard is dropped and the walk resumes
  // via stats_resume() strictly above the last visited anchor. The chunk
  // boundary is only placed where the anchor strictly increases, so resume
  // cannot revisit or skip within a run of equal anchors. Exact on a
  // quiescent map (what the tests compare against); under racing merges a
  // node absorbed across a chunk boundary may be missed or double-counted —
  // the same diagnostic slack the old single-guard walk already had for
  // nodes merging behind the cursor.
  template <class Visit>
  void for_each_level0(Visit&& visit) const {
    static constexpr std::size_t kChunkNodes = 1024;
    bool from_head = true;
    K resume{};
    for (;;) {
      ebr::Guard g;
      g.assert_held();
      Node* x = from_head ? head_ : stats_resume(resume, g);
      from_head = false;
      std::size_t seen = 0;
      while (x) {
        Rev* r = x->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
        if (r->sibling) ensure_link(x, r, g);
        visit(x, r);
        Node* nxt =
            x->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
        if (++seen >= kChunkNodes && nxt && less_(x->anchor, nxt->anchor)) {
          resume = x->anchor;  // key copy: nothing guarded escapes the region
          break;
        }
        x = nxt;
      }
      if (!x) return;  // reached the end inside this guard
    }
  }

  // Writers must start from a stamped, non-batch-pending head revision:
  // waiting out a pending batch keeps batch atomicity (a successor built
  // from an unstamped batch revision would leak it early), and stamping a
  // pending plain head keeps per-node version chains monotonic. Blocked
  // writers help rather than wait: a completed batch or a merge's final
  // revision gets its missing stamp, and a *half-installed* batch is
  // replayed to completion from its published descriptor (help_revision →
  // run_batch), so a stalled or killed batch writer never blocks progress.
  // The only revision nobody can drive forward is a pending kAbsorbed
  // marker — its merge may still abort — so only that case spins, and it is
  // bounded by the merge writer's two-CAS window. Returns the current head
  // so the caller can detect that routing went stale and re-locate.
  Rev* wait_writable(Node* x, Rev* r, const ebr::Guard& g)
      JIFFY_REQUIRES_GUARD(g) {
    SpinBackoff backoff;
    for (;;) {
      if (r->version_now() != kPendingVersion)
        return x->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
      if (help_revision(r, g)) continue;
      // Pending kAbsorbed marker: wait, but keep re-reading the head — an
      // aborted merge replaces its marker without ever stamping it, and
      // spinning on the dead revision alone would hang. The wait is bounded
      // by the merge writer's two-CAS window, but that writer may be
      // preempted (oversubscribed runs), so back off to yield rather than
      // burn the quantum it needs.
      Rev* cur = x->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
      if (cur != r) return cur;
      backoff.pause();
    }
  }

  // Drive the operation behind a pending revision to completion: stamp it
  // if only the stamp is missing, or replay a half-installed batch from its
  // descriptor. Returns false only for a pending kAbsorbed marker (its
  // merge may still be rolled back — the one state with nothing to help).
  bool help_revision(Rev* r, const ebr::Guard& g) JIFFY_REQUIRES_GUARD(g) {
    if (try_help_stamp(r, g)) return true;
    if (r->kind == RevKind::kBatch && r->cell && r->cell->batch) {
      run_batch(static_cast<BatchDescriptor<K, V>*>(r->cell->batch), r->cell,
                g);
      return true;
    }
    return false;
  }

  // Install every remaining group of a published batch, then stamp. Shared
  // by the batch writer (apply) and any helper that met one of its pending
  // revisions; all run the same loop, so the batch completes as long as
  // *anyone* is running. Race rules (DESIGN.md §6):
  //   * installs CAS from the same stamped base revision, so two threads
  //     can never both install a group — the loser re-locates, finds the
  //     winner's revision (same cell, batch_hi > i) and just publishes the
  //     watermark advance;
  //   * the watermark moves only by CAS from group start to group end, and
  //     every mover uses the boundary recorded in the installed revision
  //     (or the one it just computed for its own successful install), so
  //     racing advances are idempotent;
  //   * each thread retires only the revisions *it* replaced, and only
  //     after helping stamp the cell — the retire-strictly-after-stamp rule
  //     readers rely on;
  //   * size deltas are per-installer and disjoint (one install per group),
  //     so the sum is exact no matter who installed what.
  // Helping chains terminate: a batch only ever waits at its install
  // frontier, and helping a blocker resumes at a strictly higher key
  // (installs go in ascending key order), so blocked-on edges cannot cycle.
  // A caller must hold an ebr::Guard: it keeps the pending revision — and
  // through its cell reference the descriptor — alive while helping.
  void run_batch(BatchDescriptor<K, V>* d, VersionCell* cell,
                 const ebr::Guard& g) JIFFY_REQUIRES_GUARD(g) {
    const std::vector<BatchOp<K, V>>& sops = d->ops;
    std::vector<Rev*> replaced;
    std::int64_t delta = 0;
    SpinBackoff backoff;
    for (;;) {
      const std::size_t i =
          d->installed.load(std::memory_order_seq_cst);  // pairs: batch-watermark
      if (i >= sops.size()) break;
      if (cell->version.load(std::memory_order_seq_cst) !=  // pairs: version-stamp
          kPendingVersion)
        break;  // another thread already completed and stamped the batch
      auto [x, r] = locate(sops[i].key, g);
      if (r->cell == cell) {
        if (r->batch_hi > i) {
          // The group at the watermark is already installed — this very
          // revision covers it; publish the advance and move on.
          std::size_t e = i;
          d->installed.compare_exchange_strong(
              e, r->batch_hi, std::memory_order_seq_cst);  // pairs: batch-watermark
          continue;
        }
        // An *earlier* group's revision: ops[i] re-routed here across a
        // dead successor. Stack the new group on top — both share the cell,
        // so they linearize together. Fall through with r as the base.
      } else {
        if (r->version_now() == kPendingVersion) {
          // Pending marker: wait it out, yielding once the bounded spin
          // expires — the merge writer may be preempted on this core.
          if (!help_revision(r, g)) backoff.pause();
          continue;
        }
        if (r->kind == RevKind::kAbsorbed) continue;  // died: re-route
      }
      Node* nxt = x->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
      // The group [i, j) is every op routed to x's range. next[0] is stable
      // while x is headed by a pending revision (splits need a stamped
      // head, merges skip pending ones), so concurrent installers compute
      // the same boundary for the group they race on.
      std::size_t j = i + 1;
      while (j < sops.size() && (!nxt || less_(sops[j].key, nxt->anchor))) ++j;
      sched::point(sched::Point::kBatchInstall);
      Rev* nr = build_batch_rev(r, sops, i, j, cell, g);
      nr->batch_hi = j;
      if (!x->rev.compare_exchange_strong(
              r, nr, std::memory_order_seq_cst)) {  // pairs: rev-install
        Rev::unref(nr, /*immediate=*/true);
        // A fully-built group revision thrown away because a rival (owner
        // or helper) installed the same group first — the helping-replay
        // duplication the ROADMAP batched-scaling item attributes the
        // b10/b100 deficit to. The metrics JSON reports the ratio of this
        // against replay_group_claimed per cell.
        JIFFY_COUNT(replay_group_duplicated);
        continue;  // lost the race (maybe to a helper): re-read watermark
      }
      JIFFY_COUNT(replay_group_claimed);
      delta += static_cast<std::int64_t>(nr->count) -
               static_cast<std::int64_t>(r->count);
      replaced.push_back(r);
      sched::point(sched::Point::kBatchWatermark);
      std::size_t e = i;
      d->installed.compare_exchange_strong(
          e, j, std::memory_order_seq_cst);  // pairs: batch-watermark
    }
    if (delta != 0) size_.add(delta);  // sharded; see approx_size
    sched::point(sched::Point::kBatchStamp);
    std::uint64_t expected = kPendingVersion;
    cell->version.compare_exchange_strong(
        expected, clock_.read(), std::memory_order_seq_cst);  // pairs: version-stamp
    for (Rev* old : replaced) Rev::unref(old);
  }

  // Help stamp r if its linearization only misses the stamp itself; false
  // when r may still be rolled back or has installs outstanding. Cases:
  //   * plain revisions and split parts (helpable cell): published by one
  //     CAS, always stampable — and stamping them is part of the safety
  //     argument (DESIGN.md §5);
  //   * batch revisions: stampable once the published BatchDescriptor
  //     reports ops fully installed. This closes a real atomicity hole: the
  //     batch writer reads its stamp timestamp before the stamp CAS, so a
  //     reader that skipped the pending revision could later observe the
  //     (late) stamp at a timestamp below its own snapshot version and see
  //     a torn batch. A reader that stamps with its own (newer) clock
  //     instead resolves the batch to one side of its snapshot for
  //     everyone;
  //   * merge revisions: meeting one proves the merge's second and final
  //     CAS landed (pending kMerge only ever appears at a node head, and
  //     the rollback path never publishes it), so only the stamp is
  //     missing; same late-stamp argument as batches;
  //   * kAbsorbed markers: never — their merge may still abort.
  bool try_help_stamp(Rev* r, [[maybe_unused]] const ebr::Guard& g) const
      JIFFY_REQUIRES_GUARD(g) {
    if (r->kind == RevKind::kAbsorbed) return false;
    if (!r->cell) {
      if (r->kind != RevKind::kPlain) return false;
      r->stamp(clock_.read());
      JIFFY_COUNT(help_stamp);
      return true;
    }
    if (!r->cell->helpable && r->kind == RevKind::kBatch) {
      auto* d = static_cast<BatchDescriptor<K, V>*>(r->cell->batch);
      if (!d ||
          d->installed.load(std::memory_order_seq_cst) !=  // pairs: batch-watermark
              d->ops.size())
        return false;
    }
    r->stamp(clock_.read());
    JIFFY_COUNT(help_stamp);
    return true;
  }

  // ---- installs -----------------------------------------------------------

  bool install_plain(Node* x, Rev* r, Rev* nr,
                     [[maybe_unused]] const ebr::Guard& g)
      JIFFY_REQUIRES_GUARD(g) {
    if (!x->rev.compare_exchange_strong(
            r, nr, std::memory_order_seq_cst))  // pairs: rev-install
      return false;
    sched::point(sched::Point::kPlainStamp);
    nr->stamp(clock_.read());
    Rev::unref(r);  // retire strictly after the successor's stamp
    return true;
  }

  // Split x's content (plus the pending put of *k, if any) into parts of at
  // most max size: part 0 replaces x's revision, the rest become new nodes
  // published atomically through the revision's sibling pointer.
  bool install_split(Node* x, Rev* r, const K* k, const V* v,
                     const ebr::Guard& g) JIFFY_REQUIRES_GUARD(g) {
    std::vector<Entry> merged;
    merged.reserve(r->count + 1);
    bool placed = (k == nullptr);
    for (const Entry& e : r->entries()) {
      if (!placed && less_(*k, e.first)) {
        merged.emplace_back(*k, *v);
        placed = true;
      }
      if (!placed && !less_(e.first, *k)) {  // equal: overwrite
        merged.emplace_back(*k, *v);
        placed = true;
        continue;
      }
      merged.push_back(e);
    }
    if (!placed) merged.emplace_back(*k, *v);

    const std::uint32_t total = static_cast<std::uint32_t>(merged.size());
    const std::uint32_t maxsz = std::max<std::uint32_t>(effective_max_size(), 2);
    std::uint32_t nparts = (total + maxsz - 1) / maxsz;
    if (nparts < 2) nparts = 2;
    const std::uint32_t per = total / nparts;
    const std::uint32_t rem = total % nparts;

    auto* cell = new VersionCell;  // helpable: one CAS publishes everything
    Node* old_next = x->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
    // Never record a condemned tombstone as the link target: the purge pass
    // is about to unlink it, so help it out first and re-read. (A condemn
    // landing after this check is caught by the pass's post-drain re-sweep;
    // see DESIGN.md §9.)
    while (old_next &&
           old_next->condemned.load(std::memory_order_seq_cst)) {  // pairs: condemn-flag
      Node* nn =
          old_next->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
      x->next[0].compare_exchange_strong(
          old_next, nn, std::memory_order_seq_cst);  // pairs: next-link
      old_next = x->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
    }

    std::vector<std::pair<std::uint32_t, std::uint32_t>> parts;  // [lo, hi)
    // Append pattern (ascending bulk load): an even split would leave a
    // trail of half-full revisions behind the insertion front. Split
    // asymmetrically instead — keep the left part ~7/8 full — so loaded
    // ranges stay dense.
    if (k && nparts == 2 && r->count != 0 &&
        less_(r->entry(r->count - 1).first, *k)) {
      const std::uint32_t left =
          std::min<std::uint32_t>(total - 1, (maxsz / 8) * 7);
      if (left > 0 && total - left <= maxsz) {
        parts.emplace_back(0, left);
        parts.emplace_back(left, total);
      }
    }
    if (parts.empty()) {
      std::uint32_t lo = 0;
      for (std::uint32_t p = 0; p < nparts; ++p) {
        const std::uint32_t sz = per + (p < rem ? 1 : 0);
        parts.emplace_back(lo, lo + sz);
        lo += sz;
      }
    }
    nparts = static_cast<std::uint32_t>(parts.size());
    Node* chain = old_next;
    std::vector<Node*> new_nodes;
    for (std::uint32_t p = nparts; p-- > 1;) {
      auto [plo, phi] = parts[p];
      RevisionBuilder<K, V, Hash> b(RevKind::kPlain, phi - plo,
                                    kPendingVersion, cfg_.hash_index);
      for (std::uint32_t e = plo; e < phi; ++e)
        b.emit(merged[e].first, merged[e].second);
      Rev* rp = b.finish();
      rp->cell = cell;
      // relaxed: pre-publication refcount bump; the install CAS publishes.
      cell->refs.fetch_add(1, std::memory_order_relaxed);
      auto* m = new Node(random_height(), /*head=*/false, merged[plo].first);
      // relaxed: the node is thread-private until the install CAS.
      m->rev.store(rp, std::memory_order_relaxed);
      // relaxed: the node is thread-private until the install CAS.
      m->next[0].store(chain, std::memory_order_relaxed);
      chain = m;
      new_nodes.push_back(m);
    }
    // Wire the backward hints before publication: each new part points to
    // the part on its left (part 1 to x). new_nodes is ordered right-to-
    // left, so walk it backwards.
    {
      Node* left = x;
      for (std::size_t q = new_nodes.size(); q-- > 0;) {
        // relaxed: the node is thread-private until the install CAS.
        new_nodes[q]->back.store(left, std::memory_order_relaxed);
        left = new_nodes[q];
      }
    }
    RevisionBuilder<K, V, Hash> b0(RevKind::kPlain, parts[0].second,
                                   kPendingVersion, cfg_.hash_index);
    for (std::uint32_t e = parts[0].first; e < parts[0].second; ++e)
      b0.emit(merged[e].first, merged[e].second);
    Rev* rlow = b0.finish();
    rlow->cell = cell;
    // relaxed: pre-publication refcount bump; the install CAS publishes.
    cell->refs.fetch_add(1, std::memory_order_relaxed);
    rlow->prev = r;
    rlow->sibling = chain;
    rlow->link_expect = old_next;

    if (!x->rev.compare_exchange_strong(
            r, rlow, std::memory_order_seq_cst)) {  // pairs: rev-install
      for (Node* m : new_nodes) {
        // relaxed: the node was never published; only this thread sees it.
        Rev::unref(m->rev.load(std::memory_order_relaxed), true);
        delete m;
      }
      Rev::unref(rlow, /*immediate=*/true);  // last cell unref frees it
      return false;
    }
    sched::point(sched::Point::kSplitLink);
    ensure_link(x, rlow, g);
    // The link chain just grew: any back_gen stamped against the pre-split
    // structure is now stale, so bump the generation. Splits are the only
    // bump site — purge splices and merges never insert a node between a
    // hint and its successor, and liveness changes are covered by the fast
    // path's held_at re-check (see pred_at).
    // relaxed: the generation is a staleness filter only; pred_at's fast
    // path self-validates every hint and never trusts the stamp alone, so
    // no ordering with the link stores is required for correctness.
    gen_.fetch_add(1, std::memory_order_relaxed);
    // Tighten the old successor's back hint onto the rightmost new node
    // (new_nodes[0]); stale hints only cost a longer forward re-walk.
    if (old_next && !new_nodes.empty())
      old_next->back.store(new_nodes[0],
                           std::memory_order_release);  // pairs: back-hint
    sched::point(sched::Point::kSplitStamp);
    rlow->stamp(clock_.read());
    JIFFY_COUNT(split);
    const std::uint64_t b_v =
        cell->version.load(std::memory_order_seq_cst);  // pairs: version-stamp
    for (Node* m : new_nodes) {
      m->birth.store(b_v, std::memory_order_seq_cst);  // pairs: birth-stamp
      index_insert(m, g);
    }
    Rev::unref(r);
    return true;
  }

  // Autoscaler growth path (§3.3.6): when x plus its successor together fit
  // comfortably under the target, absorb the successor. Two installs under
  // one shared VersionCell — an kAbsorbed tombstone at s and a kMerge union
  // at x — stamped once, so readers see the merge atomically. Entirely
  // opportunistic: any interference aborts (with a rollback of the marker
  // if only the first CAS had landed) rather than waiting, which keeps the
  // ascending-order no-deadlock argument for batches intact. The dead node
  // stays in the list as a tombstone: routing skips it and old snapshots
  // still reach its pre-merge chain through the marker's prev — until the
  // purge pass proves no reader below its death version survives and
  // physically unlinks it (towers included).
  void maybe_merge(Node* x, const ebr::Guard& g) JIFFY_REQUIRES_GUARD(g) {
    const std::uint32_t target = effective_max_size();
    Rev* rx = x->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
    if (rx->kind == RevKind::kAbsorbed || rx->sibling ||
        rx->version_now() == kPendingVersion)
      return;
    Node* s = x->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
    if (!s) return;
    Rev* rs = s->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
    if (rs->kind == RevKind::kAbsorbed ||
        rs->version_now() == kPendingVersion)
      return;
    if (rs->sibling) ensure_link(s, rs, g);
    const std::size_t combined =
        std::size_t{rx->count} + std::size_t{rs->count};
    if (combined == 0 || combined > (target * 7) / 10 || combined > 0xFFFF)
      return;

    auto* cell = new VersionCell;
    cell->helpable = false;
    // relaxed: the cell is thread-private until the marker CAS publishes.
    cell->refs.store(1, std::memory_order_relaxed);  // writer's reference

    auto* marker = Rev::allocate(0, /*with_index=*/false);
    marker->kind = RevKind::kAbsorbed;
    marker->cell = cell;
    // relaxed: pre-publication refcount bump; the marker CAS publishes.
    cell->refs.fetch_add(1, std::memory_order_relaxed);
    marker->prev = rs;
    marker->home = x;

    RevisionBuilder<K, V, Hash> b(RevKind::kMerge,
                                  static_cast<std::uint32_t>(combined),
                                  kPendingVersion, cfg_.hash_index);
    for (const Entry& e : rx->entries()) b.emit(e.first, e.second);
    for (const Entry& e : rs->entries()) b.emit(e.first, e.second);
    Rev* merged = b.finish();
    merged->cell = cell;
    // relaxed: pre-publication refcount bump; the marker CAS publishes.
    cell->refs.fetch_add(1, std::memory_order_relaxed);
    merged->prev = rx;

    Rev* expect = rs;
    if (!s->rev.compare_exchange_strong(
            expect, marker, std::memory_order_seq_cst)) {  // pairs: rev-install
      Rev::unref(marker, /*immediate=*/true);
      Rev::unref(merged, /*immediate=*/true);
      release_cell(cell);
      return;
    }
    sched::point(sched::Point::kMergeMarker);
    expect = rx;
    if (!x->rev.compare_exchange_strong(
            expect, merged, std::memory_order_seq_cst)) {  // pairs: rev-install
      // x changed under us: undo s by restoring its content over the
      // marker. Nobody else replaces a pending marker (writers spin on it,
      // other merges skip pending heads), so this CAS cannot fail.
      RevisionBuilder<K, V, Hash> rb(RevKind::kPlain, rs->count,
                                     kPendingVersion, cfg_.hash_index);
      for (const Entry& e : rs->entries()) rb.emit(e.first, e.second);
      Rev* restore = rb.finish();
      restore->prev = marker;
      Rev* fe = marker;
      const bool restored = s->rev.compare_exchange_strong(
          fe, restore, std::memory_order_seq_cst);  // pairs: rev-install
      assert(restored);
      (void)restored;
      restore->stamp(clock_.read());
      Rev::unref(rs);     // retire strictly after the restore's stamp
      Rev::unref(marker);  // now chain-only; never stamped, always skipped
      Rev::unref(merged, /*immediate=*/true);
      release_cell(cell);
      return;
    }
    sched::point(sched::Point::kMergeStamp);
    merged->stamp(clock_.read());  // one stamp publishes both sides
    JIFFY_COUNT(merge);
    Rev::unref(rx);
    Rev::unref(rs);
    release_cell(cell);
    // relaxed: purge-trigger estimate; crossing the threshold late or twice
    // is harmless (purge() self-serializes on purging_).
    dead_shells_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.reclaim.auto_purge &&
        // relaxed: same advisory threshold check as the bump above.
        dead_shells_.load(std::memory_order_relaxed) >=
            static_cast<std::int64_t>(cfg_.reclaim.threshold))
      purge();
  }

  static void release_cell(VersionCell* c) {
    if (c->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)  // pairs: cell-refs
      delete c;
  }

  // ---- reclamation internals (purge(), DESIGN.md §9) ----------------------

  // Condemn every dead tombstone whose death version lies below the oldest
  // active version ticket: no current reader can need its chain, and every
  // future reader pins a version at or above the watermark — globally
  // monotonic TSC stamps put those above this shell's death version.
  //
  // The phase order is load-bearing: every candidate's death version is
  // read BEFORE the registry scan that computes the watermark. A ticket the
  // scan misses (its registration raced the scan) published its sentinel —
  // and then read the clock for the version it pins — after the scan
  // visited its slot, hence after every death version gathered here was
  // already stamped; monotonic TSC then puts that reader's version above
  // them all, so `dv < wm` keeps everything it can still need. Reading the
  // watermark first would break this: with no visible tickets the scan
  // returns kIdleVersion (~0), and a tombstone stamped *after* the scan —
  // but below the version a concurrently-registering snapshot pinned —
  // would be condemned out from under that live snapshot.
  // The caller owns the purge flag and holds an EBR guard.
  void purge_collect([[maybe_unused]] const ebr::Guard& g)
      JIFFY_REQUIRES_GUARD(g) {
    std::vector<std::pair<Node*, std::uint64_t>> cand;  // (shell, death v)
    for (Node* x =
             head_->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
         x; x = x->next[0].load(std::memory_order_seq_cst)) {  // pairs: next-link
      Rev* r = x->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
      if (r->kind != RevKind::kAbsorbed) continue;
      const std::uint64_t dv = r->version_now();
      if (dv == kPendingVersion) continue;
      if (x->condemned.load(std::memory_order_seq_cst))  // pairs: condemn-flag
        continue;
      cand.emplace_back(x, dv);
    }
    if (cand.empty()) return;
    const std::uint64_t wm = ebr::min_active_version();
    if (wm == 0) return;  // a ticket is mid-registration: next time
    for (const auto& [x, dv] : cand) {
      if (dv >= wm) continue;
      if (!x->condemned.exchange(true,
                                 std::memory_order_seq_cst)) {  // pairs: condemn-flag
        // escapes: the condemn winner owns the shell — the sticky flag stops
        // re-publication, the purging_ gate makes the list single-writer, and
        // purge_retire_pending frees it only after a clean post-drain sweep.
        purge_pending_.push_back(x);
      }
    }
  }

  // One physical pass over the whole structure, returning the number of
  // links it had to fix (0 = clean). Level 0 reaches every node — including
  // towers orphaned from their own level by insert/unlink races — so
  // scrubbing each visited node's full tower covers every slot that could
  // hold a condemned pointer. Pending split links are completed first:
  // ensure_link's force-help path re-publishes a chain that may run through
  // a condemned node, and it must have fired before the sweep that is
  // expected to leave none behind.
  std::size_t purge_sweep(const ebr::Guard& g) JIFFY_REQUIRES_GUARD(g) {
    JIFFY_COUNT(purge_sweeps);
    std::size_t fixes = 0;
    Node* p = head_;
    while (p) {
      Rev* rp = p->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
      if (rp->sibling) ensure_link(p, rp, g);
      // Splice condemned nodes (chains of them, one CAS each) out of every
      // tower slot.
      for (int l = 1; l < p->height; ++l) {
        for (Node* t = p->next[l].load(
                 std::memory_order_seq_cst);  // pairs: next-link
             t && t->condemned.load(std::memory_order_seq_cst);  // pairs: condemn-flag
             t = p->next[l].load(std::memory_order_seq_cst)) {  // pairs: next-link
          Node* after =
              t->next[l].load(std::memory_order_seq_cst);  // pairs: next-link
          if (p->next[l].compare_exchange_strong(
                  t, after, std::memory_order_seq_cst))  // pairs: next-link
            ++fixes;
        }
      }
      Node* c = p->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
      if (!c) break;
      if (c->condemned.load(std::memory_order_seq_cst)) {  // pairs: condemn-flag
        Node* after =
            c->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
        if (p->next[0].compare_exchange_strong(
                c, after, std::memory_order_seq_cst))  // pairs: next-link
          ++fixes;
        continue;  // re-examine p's (possibly new) successor
      }
      // Back hints are only hints, but they must never dangle: retarget any
      // that point into the condemned set at the current live predecessor
      // (a strict list predecessor — all the hint contract promises).
      Node* hint = c->back.load(std::memory_order_acquire);  // pairs: back-hint
      if (hint &&
          hint->condemned.load(std::memory_order_seq_cst)) {  // pairs: condemn-flag
        c->back.store(p, std::memory_order_release);  // pairs: back-hint
        ++fixes;
      }
      p = c;
    }
    return fixes;
  }

  // Post-drain, post-clean-sweep: the shells are permanently unreachable.
  std::size_t purge_retire_pending([[maybe_unused]] const ebr::Guard& g)
      JIFFY_REQUIRES_GUARD(g) {
    const std::size_t n = purge_pending_.size();
    for (Node* x : purge_pending_) {
      sched::point(sched::Point::kPurgeRetire);
      obs::trace_retire(x, sizeof(Node), obs::RetireTag::kPurgeShell);
      ebr::retire_fn(x, &delete_dead_node);  // unlink: purge-shell
    }
    purge_pending_.clear();
    // relaxed: lifetime statistic read by debug_stats only.
    purged_total_.fetch_add(n, std::memory_order_relaxed);
    // relaxed: purge-trigger estimate (see maybe_merge).
    dead_shells_.fetch_sub(static_cast<std::int64_t>(n),
                           std::memory_order_relaxed);
    return n;
  }

  // EBR deleter for a retired shell. Its head revision is the stamped
  // kAbsorbed marker and holds the only remaining head reference; the
  // marker's prev edge may dangle by now (prev edges are not counted, see
  // Revision), and its destructor releases the shared cell reference.
  static void delete_dead_node(void* p) {
    auto* n = static_cast<Node*>(p);
    // relaxed: the shell is unreachable (post-drain) — no concurrent writer
    // exists, and EBR's epoch protocol ordered all prior stores.
    Rev::unref(n->rev.load(std::memory_order_relaxed), /*immediate=*/true);
    delete n;
  }

  Rev* build_batch_rev(Rev* r, const std::vector<BatchOp<K, V>>& ops,
                       std::size_t i, std::size_t j, VersionCell* cell,
                       [[maybe_unused]] const ebr::Guard& g)
      JIFFY_REQUIRES_GUARD(g) {
    RevisionBuilder<K, V, Hash> b(
        RevKind::kBatch, static_cast<std::uint32_t>(r->count + (j - i)),
        kPendingVersion, cfg_.hash_index);
    const Entry* it = r->begin();
    const Entry* const end = r->end();
    for (std::size_t o = i; o < j; ++o) {
      while (it != end && less_(it->first, ops[o].key)) {
        b.emit(it->first, it->second);
        ++it;
      }
      const bool exists =
          it != end && !less_(ops[o].key, it->first);  // it->first == key
      if (exists) ++it;
      if (ops[o].kind == BatchOp<K, V>::Kind::kPut)
        b.emit(ops[o].key, ops[o].value);
    }
    while (it != end) {
      b.emit(it->first, it->second);
      ++it;
    }
    Rev* nr = b.finish();
    nr->cell = cell;
    // relaxed: pre-publication refcount bump; the install CAS publishes.
    cell->refs.fetch_add(1, std::memory_order_relaxed);
    nr->prev = r;
    return nr;
  }

  // k's entry under current routing, nullptr when absent (backs get() and
  // contains(); the caller must hold an ebr::Guard and copy out under it).
  // A pending head revision is either stampable right now (plain heads; and
  // batch/merge heads whose installs all landed — see try_help_stamp, which
  // closes the late-stamp atomicity hole) or not linearized yet, in which
  // case read the state before it through prev (its predecessor is always
  // stamped). Stamping before returning contents matters: otherwise a
  // snapshot taken after this read could be versioned below the (late)
  // stamp and miss a value the read already observed.
  const Entry* find_live(const K& k, const ebr::Guard& g) const
      JIFFY_REQUIRES_GUARD(g) {
    for (;;) {
      auto [x, r] = locate(k, g);
      while (r && r->version_now() == kPendingVersion &&
             !try_help_stamp(r, g))
        r = r->prev;
      if (!r) return nullptr;
      // locate() may hand us a merge marker that was pending then and got
      // stamped since: the merge committed and k now lives in the absorber,
      // so re-route rather than miss on the marker's empty array.
      if (r->kind == RevKind::kAbsorbed) continue;
      return r->find(k, fold_hash16(hash_(k)), less_);
    }
  }

  // ---- versioned reads ----------------------------------------------------

  // Newest revision in r's chain with version <= v. Helps stamp pending
  // revisions whose linearization is complete (required for reclamation
  // safety and batch/merge consistency, see try_help_stamp); pending
  // half-installed batches are not yet linearized and are skipped.
  Rev* visible_rev(Rev* r, std::uint64_t v, const ebr::Guard& g,
                   [[maybe_unused]] const ebr::VersionTicket& tk) const
      JIFFY_REQUIRES_GUARD(g) JIFFY_REQUIRES_TICKET(tk) {
    while (r) {
      // Foresight: the chain walk is a pointer chase — warm the predecessor
      // header while this revision's version (a possible cell indirection)
      // resolves. prev is immutable after publication, so the plain read is
      // race-free and the hint is never stale.
      prefetch_ro(r->prev);
      std::uint64_t t = r->version_now();
      if (t == kPendingVersion && try_help_stamp(r, g)) t = r->version_now();
      if (t <= v) return r;  // pending (== ~0) is never <= v
      r = r->prev;
    }
    return nullptr;
  }

  // Did node n hold its range at version v: born at or before v and not
  // absorbed at v (a node dead at v moved its content into a node further
  // left). One subtlety keeps this precise rather than conservative: a
  // split part's birth stamp is stored only *after* the shared cell is
  // stamped, so a node's entries can already be visible at v while its
  // birth still reads pending — in that window, ask the revision chain
  // itself (visible_rev is the ground truth scans use). Precision matters
  // for the reverse walk: unlike a forward scan, which visits every linked
  // node and lets visible_rev decide, pred_at uses this predicate to pick
  // the nearest contributing node, and a miss there loses entries; the
  // dead-at-v arm must stay exact too, or equal-anchor tombstone/rebirth
  // chains would hide a live holder behind a dead one.
  bool held_at(Node* n, std::uint64_t v, const ebr::Guard& g,
               const ebr::VersionTicket& tk) const
      JIFFY_REQUIRES_GUARD(g) JIFFY_REQUIRES_TICKET(tk) {
    Rev* h = n->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
    if (h->sibling) ensure_link(n, h, g);
    if (h->kind == RevKind::kAbsorbed && h->version_now() <= v) return false;
    const std::uint64_t b =
        n->birth.load(std::memory_order_seq_cst);  // pairs: birth-stamp
    if (b != kPendingVersion) return b <= v;
    // birth stamp still propagating: ask the chain itself
    return visible_rev(h, v, g, tk) != nullptr;
  }

  // Last node with anchor <= from that held its range at version v.
  Node* position(const K& from, std::uint64_t v, const ebr::Guard& g,
                 const ebr::VersionTicket& tk) const
      JIFFY_REQUIRES_GUARD(g) JIFFY_REQUIRES_TICKET(tk) {
    Node* x = head_;
    for (int l = Node::kMaxHeight - 1; l >= 1; --l) {
      for (Node* nxt =
               x->next[l].load(std::memory_order_acquire);  // pairs: next-link
           nxt && !less_(from, nxt->anchor) && held_at(nxt, v, g, tk);
           nxt = x->next[l].load(std::memory_order_acquire))  // pairs: next-link
        x = nxt;
      // Foresight: warm the next hop one level down (see locate()).
      // relaxed: prefetch address only, never dereferenced; the traversal
      // reload above carries the acquire edge.
      prefetch_ro(x->next[l - 1].load(std::memory_order_relaxed));
    }
    Node* best = x;
    for (Node* cur = x->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
         cur && !less_(from, cur->anchor);
         cur = cur->next[0].load(std::memory_order_seq_cst)) {  // pairs: next-link
      if (held_at(cur, v, g, tk)) best = cur;
    }
    return best;
  }

  // Consistent ordered visit of up to n entries >= from at version v.
  // Split overlap (an old full revision plus a sibling's copy visible in the
  // same window) is deduplicated by requiring strictly increasing keys.
  template <class F>
  std::size_t scan_at(const K& from, std::size_t n, std::uint64_t v, F&& f,
                      const ebr::Guard& g, const ebr::VersionTicket& tk) const
      JIFFY_REQUIRES_GUARD(g) JIFFY_REQUIRES_TICKET(tk) {
    std::size_t emitted = 0;
    const K* last = nullptr;
    for (Node* x = position(from, v, g, tk); x && emitted < n;) {
      // Foresight: the next node's header miss overlaps this node's
      // revision-chain walk and entry emission.
      // relaxed: prefetch address only, never dereferenced; the loop's
      // paired seq_cst reload below is what the traversal follows.
      prefetch_ro(x->next[0].load(std::memory_order_relaxed));
      Rev* head = x->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
      if (head->sibling) ensure_link(x, head, g);
      if (Rev* r = visible_rev(head, v, g, tk)) {
        const Entry* it = r->lower_bound_pos(from, less_);
        for (; it != r->end() && emitted < n; ++it) {
          if (last && !less_(*last, it->first)) continue;
          f(it->first, it->second);
          last = &it->first;
          ++emitted;
        }
      }
      x = x->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
    }
    return emitted;
  }

  // Versioned point lookup: invoke f on k's entry at version v, if present
  // (backs get_at and Snapshot::contains).
  template <class F>
  void with_entry_at(const K& k, std::uint64_t v, F&& f, const ebr::Guard& g,
                     const ebr::VersionTicket& tk) const
      JIFFY_REQUIRES_GUARD(g) JIFFY_REQUIRES_TICKET(tk) {
    scan_at(
        k, 1, v,
        [&](const K& key, const V& val) {
          if (!less_(k, key) && !less_(key, k)) f(key, val);
        },
        g, tk);
  }

  std::optional<V> get_at(const K& k, std::uint64_t v, const ebr::Guard& g,
                          const ebr::VersionTicket& tk) const
      JIFFY_REQUIRES_GUARD(g) JIFFY_REQUIRES_TICKET(tk) {
    std::optional<V> out;
    with_entry_at(
        k, v, [&](const K&, const V& val) { out = val; }, g, tk);
    return out;
  }

  // Consistent descending visit of up to n entries <= from at version v,
  // driven by the reverse cursor (which walks the backward links).
  // The guard/ticket parameters witness that v is still covered while the
  // cursor (which then pins it itself) is constructed.
  template <class F>
  std::size_t rscan_at(const K& from, std::size_t n, std::uint64_t v, F&& f,
                       [[maybe_unused]] const ebr::Guard& g,
                       [[maybe_unused]] const ebr::VersionTicket& tk) const
      JIFFY_REQUIRES_GUARD(g) JIFFY_REQUIRES_TICKET(tk) {
    SnapCursor<JiffyMap> c(this, v);
    std::size_t emitted = 0;
    for (c.seek_for_prev(from); c.valid() && emitted < n; c.prev()) {
      f(c.key(), c.value());
      ++emitted;
    }
    return emitted;
  }

  // Consistent ordered visit of every entry in [lo, hi) at version v.
  template <class F>
  std::size_t range_at(const K& lo, const K& hi, std::uint64_t v, F&& f,
                       [[maybe_unused]] const ebr::Guard& g,
                       [[maybe_unused]] const ebr::VersionTicket& tk) const
      JIFFY_REQUIRES_GUARD(g) JIFFY_REQUIRES_TICKET(tk) {
    SnapCursor<JiffyMap> c(this, v);
    std::size_t emitted = 0;
    for (c.seek(lo); c.in_range_below(hi); c.next()) {
      f(c.key(), c.value());
      ++emitted;
    }
    return emitted;
  }

  // Nearest node left of x that held its range at version v (nullptr when x
  // is the head). Backward links are hints that only promise a strict list
  // predecessor (see JiffyNode::back), so: follow them to a node alive at
  // v, then tighten with a forward walk — every node between the hint and x
  // is on the level-0 chain because nodes are never physically unlinked.
  // Reverse traversal therefore inherits the forward walk's
  // version-visibility rules; the hints only buy locality.
  Node* pred_at(Node* x, std::uint64_t v, const ebr::Guard& g,
                const ebr::VersionTicket& tk) const
      JIFFY_REQUIRES_GUARD(g) JIFFY_REQUIRES_TICKET(tk) {
    if (x == head_) return nullptr;
    // relaxed: the generation is a staleness filter, not a publication
    // channel — the fast path below self-validates the hint, so any recent
    // value is acceptable (a stale read only forfeits the shortcut).
    const std::uint64_t gen = gen_.load(std::memory_order_relaxed);
    Node* hint = x->back.load(std::memory_order_acquire);  // pairs: back-hint
    // Quiescent fast path (DESIGN.md §14): a hint stamped with the current
    // link generation was forward-validated since the last split changed
    // the chain. The stamp alone is NOT trusted — back and back_gen are
    // separate atomics that racing slow paths can cross-pair — so the hint
    // is re-validated in place: it must still be x's immediate list
    // predecessor (next[0] == x) and must hold its range at v. That pair of
    // checks is point-in-time sound on its own (v was pinned before this
    // call: a node linked later is born after v, and an unlinked node is a
    // condemned tombstone already dead at v), which is what makes the
    // generation safe to use as a mere filter. On a match the whole forward
    // re-validation walk is skipped.
    if (hint &&
        x->back_gen.load(std::memory_order_acquire) == gen &&  // pairs: back-gen
        hint->next[0].load(std::memory_order_seq_cst) == x &&  // pairs: next-link
        (hint == head_ || held_at(hint, v, g, tk)))
      return hint;
    Node* p = hint ? hint : head_;
    while (p != head_ && !held_at(p, v, g, tk)) {
      Node* q = p->back.load(std::memory_order_acquire);  // pairs: back-hint
      p = q ? q : head_;
    }
    Node* best = p;  // the head held every version; p held v by the loop
    for (Node* cur = p->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
         cur && less_(cur->anchor, x->anchor);
         cur = cur->next[0].load(std::memory_order_seq_cst)) {  // pairs: next-link
      if (held_at(cur, v, g, tk)) best = cur;
    }
    // Tighten the hint — but never to a condemned node: the purge pass
    // scrubs stale hints before retiring a shell, and a reader must not
    // plant fresh ones behind its back (ticketed versions make `best`
    // condemned only in the brief window before the condemn flag is seen).
    // When the validated predecessor is x's immediate one, also stamp the
    // pre-walk generation: if no split intervened (gen_ still == gen), a
    // later reverse scan may take the fast path above. Stamping the
    // *pre-walk* value is what keeps the filter conservative — a split
    // racing this walk bumped gen_ already, so the stamp mismatches and the
    // next reader re-validates.
    if (!best->condemned.load(std::memory_order_seq_cst)) {  // pairs: condemn-flag
      if (best != hint)
        x->back.store(best, std::memory_order_release);  // pairs: back-hint
      if (best->next[0].load(std::memory_order_seq_cst) == x)  // pairs: next-link
        x->back_gen.store(gen, std::memory_order_release);  // pairs: back-gen
    }
    return best;
  }

  // Rightmost node currently linked (completing pending split links on the
  // way so the fringe is reachable); seeds seek_to_last.
  Node* rightmost(const ebr::Guard& g) const JIFFY_REQUIRES_GUARD(g) {
    Node* x = head_;
    for (int l = Node::kMaxHeight - 1; l >= 1; --l)
      for (Node* nxt =
               x->next[l].load(std::memory_order_acquire);  // pairs: next-link
           nxt;
           nxt = x->next[l].load(std::memory_order_acquire))  // pairs: next-link
        x = nxt;
    for (;;) {
      Rev* r = x->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
      if (r->sibling) ensure_link(x, r, g);
      Node* nxt = x->next[0].load(std::memory_order_seq_cst);  // pairs: next-link
      if (!nxt) return x;
      x = nxt;
    }
  }

  // ---- misc ---------------------------------------------------------------

  std::uint32_t effective_max_size() const {
    const std::uint32_t t = cfg_.autoscaler.enabled
                                ? scaler_.target()
                                : cfg_.autoscaler.fixed_size;
    return t < 2 ? 2 : t;
  }

  static int random_height() {
    thread_local std::uint64_t state =
        splitmix64(reinterpret_cast<std::uintptr_t>(&state) ^ 0xA5A5A5A5ull);
    state = splitmix64(state);
    int h = 1;
    std::uint64_t x = state;
    while ((x & 3) == 0 && h < Node::kMaxHeight) {  // p = 1/4
      ++h;
      x >>= 2;
    }
    return h;
  }

  // Link a freshly split node into tower levels 1..height-1. Only its
  // creator calls this; towers are insert-only so a plain CAS per level
  // suffices.
  void index_insert(Node* m, [[maybe_unused]] const ebr::Guard& g)
      JIFFY_REQUIRES_GUARD(g) {
    for (int l = 1; l < m->height; ++l) {
      for (;;) {
        Node* pred = head_;
        for (int dl = Node::kMaxHeight - 1; dl >= l; --dl) {
          for (Node* nxt =
                   pred->next[dl].load(std::memory_order_acquire);  // pairs: next-link
               nxt && less_(nxt->anchor, m->anchor);
               nxt = pred->next[dl].load(std::memory_order_acquire))  // pairs: next-link
            pred = nxt;
        }
        Node* succ =
            pred->next[l].load(std::memory_order_acquire);  // pairs: next-link
        if (succ == m) break;
        // relaxed: m's slot at level l is unreachable until the CAS below
        // publishes it (only its creator links level l).
        m->next[l].store(succ, std::memory_order_relaxed);
        if (pred->next[l].compare_exchange_strong(
                succ, m, std::memory_order_seq_cst))  // pairs: next-link
          break;
      }
    }
  }

  JiffyConfig cfg_;
  Less less_{};
  Hash hash_{};
  Clock clock_{};
  mutable RevisionAutoscaler scaler_;
  // Hot shared state below is cacheline-padded so independently-written
  // atomics never false-share with each other or with the read-mostly
  // members above (head_, cfg_); see DESIGN.md §14 for the per-op budget.
  StripedCounter<kCounterShards> size_;
  // Link-structure generation: bumped by install_split between linking the
  // new nodes and stamping them live. pred_at's slow path stamps it into
  // back_gen after validating a hint; a matching stamp lets reverse scans
  // try the hint first. Bumped only on split — purge splices and merges
  // never insert nodes between a hint and its successor, and liveness
  // changes are covered by the fast path's held_at re-check.
  CachePadded<std::atomic<std::uint64_t>> gen_pad_;
  std::atomic<std::uint64_t>& gen_ = gen_pad_.value;
  Node* head_;

  // Reclamation state (purge()). purge_pending_ and purge_epoch_ are owned
  // by whichever thread holds purging_.
  CachePadded<std::atomic<std::int64_t>>
      dead_shells_pad_;  // kAbsorbed shells not retired
  std::atomic<std::int64_t>& dead_shells_ = dead_shells_pad_.value;
  CachePadded<std::atomic<std::uint64_t>> purged_total_pad_;
  std::atomic<std::uint64_t>& purged_total_ = purged_total_pad_.value;
  CachePadded<std::atomic<bool>> purging_pad_;
  std::atomic<bool>& purging_ = purging_pad_.value;
  std::vector<Node*> purge_pending_;  // condemned + unlinked, awaiting drain
  std::uint64_t purge_epoch_ = 0;
};

// A bidirectional, RocksDB-style cursor over one consistent version of a
// JiffyMap. Normally obtained from a Snapshot (seek / seek_for_prev / first
// / last); constructing one directly requires a version read under a live
// EBR guard. The cursor holds its own (nested, refcounted) guard, so it
// remains safe for its whole lifetime provided it is created while the
// snapshot — or the guard the version was read under — is still alive: the
// nested guard keeps this thread's epoch pinned continuously.
//
// Positioning: seek(k) lands on the first key >= k, seek_for_prev(k) on the
// last key <= k, seek_to_first / seek_to_last on the extremes; next() and
// prev() then step in either direction. Every landing obeys the TSC-version
// visibility rules of forward scans: per node the newest revision with
// version <= v (helping stamp pending plain revisions), nodes born after v
// or absorbed at v contribute nothing, and the strict key bound on every
// node hop deduplicates the transient split/merge overlap windows in both
// directions. Reverse hops go through JiffyMap::pred_at (backward links).
template <class MapT>
class SnapCursor {
 public:
  using K = typename MapT::key_type;
  using V = typename MapT::mapped_type;

  // The version must still be covered when a cursor is constructed (by the
  // snapshot's ticket, or the scan guard+ticket it was read under): the
  // cursor then pins it with its own ticket, keeping the purge watermark at
  // or below v_ for the cursor's whole lifetime.
  SnapCursor(const MapT* m, std::uint64_t version) : map_(m), v_(version) {
    ticket_.publish(v_);
  }

  SnapCursor(const SnapCursor& o)
      : map_(o.map_), v_(o.v_), node_(o.node_), rev_(o.rev_), idx_(o.idx_),
        valid_(o.valid_) {
    ticket_.publish(v_);
  }

  SnapCursor& operator=(const SnapCursor& o) {
    map_ = o.map_;
    v_ = o.v_;
    node_ = o.node_;
    rev_ = o.rev_;
    idx_ = o.idx_;
    valid_ = o.valid_;
    ticket_.publish(v_);  // guard_ keeps its own pin; re-pin the version
    return *this;
  }

  bool valid() const { return valid_; }
  const K& key() const {
    assert(valid_);
    return rev_->entry(idx_).first;
  }
  const V& value() const {
    assert(valid_);
    return rev_->entry(idx_).second;
  }
  std::uint64_t version() const { return v_; }

  // true while valid and ordered before `hi` — the half-open range test.
  bool in_range_below(const K& hi) const {
    return valid_ && map_->less_(key(), hi);
  }

  void seek(const K& k) {
    guard_.assert_held();
    ticket_.assert_pinned();
    land_forward(map_->position(k, v_, guard_, ticket_), &k,
                 /*inclusive=*/true);
  }

  void seek_for_prev(const K& k) {
    guard_.assert_held();
    ticket_.assert_pinned();
    land_backward(map_->position(k, v_, guard_, ticket_), &k,
                  /*inclusive=*/true);
  }

  void seek_to_first() {
    guard_.assert_held();
    ticket_.assert_pinned();
    land_forward(map_->head_, nullptr, true);
  }

  void seek_to_last() {
    guard_.assert_held();
    ticket_.assert_pinned();
    land_backward(map_->rightmost(guard_), nullptr, true);
  }

  void next() {
    if (!valid_) return;  // stepping an invalid cursor is a no-op
    // Entries are unique and sorted within a revision, so the next entry in
    // this revision is the successor key; otherwise continue in later nodes
    // excluding keys <= current (split-overlap dedup).
    if (idx_ + 1 < rev_->count) {
      ++idx_;
      return;
    }
    guard_.assert_held();
    ticket_.assert_pinned();
    const K cur = key();
    land_forward(node_->next[0].load(std::memory_order_seq_cst),  // pairs: next-link
                 &cur, /*inclusive=*/false);
  }

  void prev() {
    if (!valid_) return;  // stepping an invalid cursor is a no-op
    if (idx_ > 0) {
      --idx_;
      return;
    }
    guard_.assert_held();
    ticket_.assert_pinned();
    const K cur = key();
    land_backward(map_->pred_at(node_, v_, guard_, ticket_), &cur,
                  /*inclusive=*/false);
  }

 private:
  using Node = typename MapT::Node;
  using Rev = typename MapT::Rev;
  using Entry = typename Rev::Entry;

  void set(Node* x, Rev* r, std::uint32_t i) {
    node_ = x;
    rev_ = r;
    idx_ = i;
    valid_ = true;
  }

  // The node's visible revision at v (completing pending split links first).
  Rev* visible_head(Node* x) const JIFFY_REQUIRES(guard_, ticket_) {
    Rev* h = x->rev.load(std::memory_order_seq_cst);  // pairs: rev-install
    if (h->sibling) map_->ensure_link(x, h, guard_);
    return map_->visible_rev(h, v_, guard_, ticket_);
  }

  // Land on the first visible entry >= *bound (> when !inclusive) in x or
  // any node to its right; invalidate when none exists.
  void land_forward(Node* x, const K* bound, bool inclusive)
      JIFFY_REQUIRES(guard_, ticket_) {
    auto el = [this](const Entry& e, const K& k) {
      return map_->less_(e.first, k);
    };
    auto le = [this](const K& k, const Entry& e) {
      return map_->less_(k, e.first);
    };
    for (; x;
         x = x->next[0].load(std::memory_order_seq_cst)) {  // pairs: next-link
      if (Rev* r = visible_head(x)) {
        std::uint32_t i = 0;
        if (bound) {
          const Entry* it =
              inclusive ? std::lower_bound(r->begin(), r->end(), *bound, el)
                        : std::upper_bound(r->begin(), r->end(), *bound, le);
          i = static_cast<std::uint32_t>(it - r->begin());
        }
        if (i < r->count) {
          set(x, r, i);
          return;
        }
      }
    }
    valid_ = false;
  }

  // Land on the last visible entry <= *bound (< when !inclusive) in x or
  // any node to its left; invalidate when none exists.
  void land_backward(Node* x, const K* bound, bool inclusive)
      JIFFY_REQUIRES(guard_, ticket_) {
    auto el = [this](const Entry& e, const K& k) {
      return map_->less_(e.first, k);
    };
    auto le = [this](const K& k, const Entry& e) {
      return map_->less_(k, e.first);
    };
    for (; x; x = map_->pred_at(x, v_, guard_, ticket_)) {
      if (Rev* r = visible_head(x)) {
        std::uint32_t i = r->count;
        if (bound) {
          const Entry* it =
              inclusive ? std::upper_bound(r->begin(), r->end(), *bound, le)
                        : std::lower_bound(r->begin(), r->end(), *bound, el);
          i = static_cast<std::uint32_t>(it - r->begin());
        }
        if (i > 0) {
          set(x, r, i - 1);
          return;
        }
      }
    }
    valid_ = false;
  }

  const MapT* map_;
  std::uint64_t v_;
  ebr::Guard guard_;
  ebr::VersionTicket ticket_;
  Node* node_ = nullptr;
  Rev* rev_ = nullptr;
  std::uint32_t idx_ = 0;
  bool valid_ = false;
};

// A consistent point-in-time view: the first-class handle for versioned
// reads. Holds an EBR guard for its lifetime, so the revision chains
// backing `version()` stay reachable; keep snapshots short-lived or expect
// retired garbage to accumulate. Beyond point gets and bounded scans it
// hands out bidirectional cursors and half-open range views, all reading at
// the same frozen version. Snapshots and the cursors they produce pin the
// creating thread's epoch — create cursors while the snapshot is alive.
template <class MapT>
class Snapshot {
 public:
  using K = typename MapT::key_type;
  using V = typename MapT::mapped_type;
  using Cursor = SnapCursor<MapT>;

  // Member order matters: ticket_ registers its "reserving" sentinel before
  // version_'s initializer reads the clock, so the purge watermark can never
  // slip past the version this snapshot is about to pin.
  explicit Snapshot(const MapT* m)
      : map_(m), version_(m->clock_.read()) {
    ticket_.publish(version_);
  }

  std::uint64_t version() const { return version_; }

  std::optional<V> get(const K& k) const {
    guard_.assert_held();  // class invariant: members pin epoch + version
    ticket_.assert_pinned();
    return map_->get_at(k, version_, guard_, ticket_);
  }

  // Membership without materializing the value.
  bool contains(const K& k) const {
    guard_.assert_held();
    ticket_.assert_pinned();
    bool found = false;
    map_->with_entry_at(
        k, version_, [&](const K&, const V&) { found = true; }, guard_,
        ticket_);
    return found;
  }

  template <class F>
  std::size_t scan_n(const K& from, std::size_t n, F&& f) const {
    guard_.assert_held();
    ticket_.assert_pinned();
    return map_->scan_at(from, n, version_, std::forward<F>(f), guard_,
                         ticket_);
  }

  template <class F>
  std::size_t rscan_n(const K& from, std::size_t n, F&& f) const {
    guard_.assert_held();
    ticket_.assert_pinned();
    return map_->rscan_at(from, n, version_, std::forward<F>(f), guard_,
                          ticket_);
  }

  // ---- cursors ------------------------------------------------------------

  Cursor cursor() const { return Cursor(map_, version_); }  // unpositioned

  Cursor seek(const K& k) const {
    Cursor c(map_, version_);
    c.seek(k);
    return c;
  }

  Cursor seek_for_prev(const K& k) const {
    Cursor c(map_, version_);
    c.seek_for_prev(k);
    return c;
  }

  Cursor first() const {
    Cursor c(map_, version_);
    c.seek_to_first();
    return c;
  }

  Cursor last() const {
    Cursor c(map_, version_);
    c.seek_to_last();
    return c;
  }

  // ---- half-open range views ----------------------------------------------

  // STL-style forward view of [lo, hi) at the snapshot version:
  //   for (auto [k, v] : snap.range(lo, hi)) ...
  // Holds its own EBR guard: in C++20 a range-for over
  // `map.snapshot().range(lo, hi)` destroys the Snapshot temporary before
  // begin() runs (temporary lifetime extension in range-for is C++23), so
  // the view itself must keep the epoch pinned from construction on.
  class Range {
   public:
    struct Sentinel {};

    Range(const Range& o) : map_(o.map_), v_(o.v_), lo_(o.lo_), hi_(o.hi_) {
      ticket_.publish(v_);
    }

    class Iterator {
     public:
      std::pair<const K&, const V&> operator*() const {
        return {c_.key(), c_.value()};
      }
      Iterator& operator++() {
        c_.next();
        return *this;
      }
      bool operator==(Sentinel) const { return !c_.in_range_below(hi_); }
      bool operator!=(Sentinel s) const { return !(*this == s); }

     private:
      friend class Range;
      Iterator(const MapT* m, std::uint64_t v, const K& lo, const K& hi)
          : hi_(hi), c_(m, v) {
        c_.seek(lo);
      }
      K hi_;
      Cursor c_;
    };

    Iterator begin() const { return Iterator(map_, v_, lo_, hi_); }
    Sentinel end() const { return Sentinel{}; }

   private:
    friend class Snapshot;
    Range(const MapT* m, std::uint64_t v, K lo, K hi)
        : map_(m), v_(v), lo_(std::move(lo)), hi_(std::move(hi)) {
      ticket_.publish(v_);
    }
    const MapT* map_;
    std::uint64_t v_;
    ebr::Guard guard_;  // the view outlives the Snapshot temporary in C++20
    ebr::VersionTicket ticket_;  // range-for, so it pins epoch and version
    K lo_;
    K hi_;
  };

  Range range(const K& lo, const K& hi) const {
    return Range(map_, version_, lo, hi);
  }

 private:
  const MapT* map_;
  ebr::Guard guard_;
  ebr::VersionTicket ticket_;
  std::uint64_t version_;
};

}  // namespace jiffy
