// Deterministic fault injection for the engine's lock-free protocols.
//
// The engine calls jiffy::sched::point(Point::kX) at every named schedule
// point — the instants between a CAS publishing shared state and the follow-up
// step that makes it complete (stamp, watermark bump, link). In release builds
// (JIFFY_SCHEDULE_POINTS undefined) point() reduces to the obs trace hook —
// one relaxed load of the trace-enable flag (and nothing at all under
// JIFFY_OBS=0); the fault-injection machinery below stays compiled out.
//
// In test builds (-DJIFFY_SCHEDULE_POINTS=1) a FaultPlan installed by the test
// can, at the Nth global hit of a point:
//   - yield    the thread k times (scheduler perturbation),
//   - stall    the thread for a bounded number of microseconds,
//   - block    the thread until FaultPlan::release_all() — this models a
//              *killed* writer: the thread makes no progress while the rest of
//              the map keeps running, and is only released at test teardown so
//              it can be joined.
// A seeded "chaos" mode additionally perturbs a fraction of all hits with
// bounded yields/stalls; the seed is chosen and logged by the test, so a
// failing schedule is reproducible up to OS scheduling.
//
// Threads opt out with enable_this_thread(false) (default: enabled), which
// lets a test aim a block at one designated victim while helper threads run
// through the same code paths unimpeded.
#pragma once

#include <cstdint>

#include "obs/trace.h"

#if defined(JIFFY_SCHEDULE_POINTS) && JIFFY_SCHEDULE_POINTS
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>
#endif

namespace jiffy::sched {

// Catalog of engine schedule points (see DESIGN.md §9 for the windows each
// one sits in). Keep kPointNames in sync.
enum class Point : unsigned {
  kPlainStamp = 0,   // plain revision installed, not yet stamped
  kSplitLink,        // split revisions installed, sibling chain not yet linked
  kSplitStamp,       // split chain linked, cell not yet stamped
  kBatchInstall,     // about to CAS one batch group's revision in
  kBatchWatermark,   // group revision in, watermark not yet advanced
  kBatchStamp,       // all groups in, cell not yet stamped
  kMergeMarker,      // kAbsorbed marker in at victim, union not yet at absorber
  kMergeStamp,       // merge union in, cell not yet stamped
  kPurgeRetire,      // purge pass about to retire an unlinked shell
  kCount
};

inline constexpr const char* kPointNames[] = {
    "plain_stamp",     "split_link",  "split_stamp",
    "batch_install",   "batch_watermark", "batch_stamp",
    "merge_marker",    "merge_stamp", "purge_retire"};

inline constexpr unsigned kPointCount = static_cast<unsigned>(Point::kCount);

inline const char* name(Point p) {
  return kPointNames[static_cast<unsigned>(p)];
}

#if defined(JIFFY_SCHEDULE_POINTS) && JIFFY_SCHEDULE_POINTS

enum class Action : std::uint8_t { kYield, kStall, kBlock };

struct Trigger {
  Point point;
  std::uint64_t nth;    // fires on the nth global hit of `point` (1-based)
  Action action;
  std::uint32_t param;  // yields: count; stall: microseconds; block: unused
};

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // -------- test-side configuration (before install()) --------
  void block_at(Point p, std::uint64_t nth) {
    triggers_.push_back({p, nth, Action::kBlock, 0});
  }
  void yield_at(Point p, std::uint64_t nth, std::uint32_t times = 4) {
    triggers_.push_back({p, nth, Action::kYield, times});
  }
  void stall_at(Point p, std::uint64_t nth, std::uint32_t micros) {
    triggers_.push_back({p, nth, Action::kStall, micros});
  }
  // Background noise: roughly `per_mille`/1000 of all hits get a bounded
  // yield or stall chosen by hashing (seed, point, hit index).
  void chaos(std::uint64_t seed, std::uint32_t per_mille) {
    chaos_seed_ = seed;
    chaos_per_mille_ = per_mille;
  }

  // -------- test-side runtime queries / teardown --------
  std::size_t blocked() const {
    return blocked_.load(std::memory_order_acquire);  // pairs: sched-blocked
  }
  void release_all() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }
  std::uint64_t hits(Point p) const {
    // relaxed: advisory statistic; tests read it after joining the workers.
    return hits_[static_cast<unsigned>(p)].load(std::memory_order_relaxed);
  }

  // -------- global hook --------
  // The plan must outlive every thread that can hit a point, and triggers_
  // must not change after install.
  static void install(FaultPlan* p) {
    current().store(p, std::memory_order_seq_cst);  // pairs: sched-plan
  }
  static void uninstall() {
    current().store(nullptr, std::memory_order_seq_cst);  // pairs: sched-plan
  }
  static FaultPlan* installed() {
    return current().load(std::memory_order_acquire);  // pairs: sched-plan
  }

  // -------- engine side --------
  void on_point(Point p) {
    // relaxed: per-point hit counter; triggers only compare the value this
    // thread observed, and cross-thread totals are advisory.
    const std::uint64_t n =
        hits_[static_cast<unsigned>(p)].fetch_add(1, std::memory_order_relaxed) +
        1;
    for (const Trigger& t : triggers_) {
      if (t.point == p && t.nth == n) act(t.action, t.param);
    }
    if (chaos_per_mille_ != 0) {
      std::uint64_t h = chaos_seed_ ^
                        (static_cast<std::uint64_t>(p) * 0x9e3779b97f4a7c15ull) ^
                        (n * 0xbf58476d1ce4e5b9ull);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= h >> 27;
      h *= 0x94d049bb133111ebull;
      h ^= h >> 31;
      if (h % 1000 < chaos_per_mille_) {
        // 7 in 8 perturbations are yields, 1 in 8 a short stall.
        if ((h >> 32) % 8 != 0)
          act(Action::kYield, 1 + static_cast<std::uint32_t>((h >> 35) % 4));
        else
          act(Action::kStall, 20 + static_cast<std::uint32_t>((h >> 35) % 200));
      }
    }
  }

 private:
  static std::atomic<FaultPlan*>& current() {
    static std::atomic<FaultPlan*> g{nullptr};
    return g;
  }

  void act(Action a, std::uint32_t param) {
    switch (a) {
      case Action::kYield:
        for (std::uint32_t i = 0; i < param; ++i) std::this_thread::yield();
        break;
      case Action::kStall:
        std::this_thread::sleep_for(std::chrono::microseconds(param));
        break;
      case Action::kBlock: {
        std::unique_lock<std::mutex> lk(mu_);
        if (released_) break;  // plan already torn down: pass through
        blocked_.fetch_add(1, std::memory_order_release);  // pairs: sched-blocked
        cv_.wait(lk, [this] { return released_; });
        blocked_.fetch_sub(1, std::memory_order_release);  // pairs: sched-blocked
        break;
      }
    }
  }

  std::vector<Trigger> triggers_;
  std::atomic<std::uint64_t> hits_[kPointCount]{};
  std::uint64_t chaos_seed_ = 0;
  std::uint32_t chaos_per_mille_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
  std::atomic<std::size_t> blocked_{0};
};

inline bool& this_thread_enabled() {
  thread_local bool enabled = true;
  return enabled;
}
inline void enable_this_thread(bool on) { this_thread_enabled() = on; }

inline void point(Point p) {
  obs::trace_sched(static_cast<unsigned>(p));
  FaultPlan* f = FaultPlan::installed();
  if (f != nullptr && this_thread_enabled()) f->on_point(p);
}

#else  // !JIFFY_SCHEDULE_POINTS

inline void point(Point p) { obs::trace_sched(static_cast<unsigned>(p)); }

#endif

}  // namespace jiffy::sched
